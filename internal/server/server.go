// Package server is the network front door of the engine: an HTTP/JSON API
// exposing DML, queries, DDL and admin over a birds database, with every
// client session multiplexed onto ONE group-commit batcher — the
// architecture the write pipeline was built for: N concurrent writers'
// transactions coalesce into single view-maintenance passes and (with
// durability enabled) single WAL fsyncs.
//
// Endpoints:
//
//	POST /exec        run one DML transaction ({"sql": "..."} or {"stmts": [...]})
//	POST /query       snapshot one or more relations atomically ({"rels": [...]})
//	GET  /views/NAME  snapshot one view
//	POST /ddl         create a base table or an updatable view
//	POST /session     mint a session id (optional; sessions are bookkeeping)
//	POST /flush       flush the pending group-commit batch
//	POST /checkpoint  write a snapshot checkpoint and truncate the WAL
//	GET  /stats       server + batcher + engine + WAL counters
//	GET  /healthz     liveness probe
//
// Consistency contract, as seen over HTTP: a 200 from POST /exec means the
// transaction's batch has FLUSHED — its effects are visible to every
// subsequent read and, with durability enabled, its WAL record is on disk,
// fsynced per the configured mode. Flushes apply whole batches atomically
// under the engine write lock, so any single response (including a
// multi-relation POST /query) observes batch boundaries only: no reader
// ever sees a torn batch, and a view in a response always agrees exactly
// with the base tables in the same response. A 5xx (flush failure, timeout)
// means the transaction is INDETERMINATE: it was not acknowledged, but it
// may still commit with a later flush retry.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"birds/internal/datalog"
	"birds/internal/engine"
)

// Config configures a Server.
type Config struct {
	// BatchSize is the group-commit size trigger (Batcher MaxTxns):
	// 0 selects engine.DefaultBatchSize, 1 gives an unbatched server
	// (every transaction flushes immediately — the baseline birdsload's
	// acceptance ratio compares against), negative disables the size
	// trigger entirely.
	BatchSize int
	// FlushInterval bounds the commit latency of a partially filled
	// batch: a non-empty batch flushes this long after its first
	// admission. 0 selects DefaultFlushInterval — with BatchSize > 1 an
	// admitted transaction's acknowledgment waits for its flush, so some
	// interval trigger is required for low-traffic liveness.
	FlushInterval time.Duration
	// RequestTimeout bounds each request, including the wait for the
	// transaction's flush. 0 selects DefaultRequestTimeout; negative
	// disables the timeout.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInflight bounds concurrently admitted data-plane requests (exec,
	// query, views, ddl, checkpoint): when the bound is reached further
	// requests are shed immediately with 503 + Retry-After instead of
	// piling onto the engine locks. Admin and liveness endpoints (/stats,
	// /healthz, /flush, /reopen) are never shed — they are how operators
	// observe and clear an overload. 0 selects DefaultMaxInflight;
	// negative disables shedding.
	MaxInflight int
	// Heartbeat is the idle-ping interval of GET /subscribe streams: a
	// stream with no events for this long emits a "ping" line carrying
	// the hub's current sequence number. 0 selects DefaultHeartbeat;
	// negative disables pings.
	Heartbeat time.Duration
}

// Defaults for the zero Config.
const (
	DefaultFlushInterval  = 2 * time.Millisecond
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 1 << 20
	DefaultMaxInflight    = 256
	DefaultHeartbeat      = 5 * time.Second
)

// Server serves one database over HTTP. Create it with New, mount
// Handler(), and Drain() it on shutdown.
type Server struct {
	db  *engine.DB
	cfg Config
	mux *http.ServeMux

	// bt is the group-commit handle. Atomic because POST /reopen retires
	// the degraded handle and installs a fresh one while requests are in
	// flight; every request loads it once and uses that snapshot.
	bt atomic.Pointer[engine.Batcher]
	// reopenMu serializes POST /reopen (discard batcher, recover, swap).
	reopenMu sync.Mutex

	// inflight is the admission semaphore (nil = unlimited): a slot is
	// held for the duration of each data-plane request; when none is free
	// the request is shed with 503 + Retry-After.
	inflight chan struct{}

	sessions *sessionRegistry
	start    time.Time

	requests atomic.Uint64
	execs    atomic.Uint64
	queries  atomic.Uint64
	errs     atomic.Uint64
	shed     atomic.Uint64

	// Subscription streams (GET /subscribe): live gauge and lifetime
	// total. streamClose ends every open stream at shutdown —
	// http.Server.Shutdown waits for handlers, and a subscription handler
	// never returns on its own.
	streamsActive atomic.Int64
	streamsTotal  atomic.Uint64
	streamClose   chan struct{}
	streamOnce    sync.Once

	drainOnce sync.Once
	drainErr  error
}

// New builds a server over db. The server owns an independent group-commit
// handle (db.Batch) — db.Exec elsewhere keeps its configured behavior.
func New(db *engine.DB, cfg Config) *Server {
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	s := &Server{
		db:          db,
		cfg:         cfg,
		mux:         http.NewServeMux(),
		sessions:    newSessionRegistry(),
		start:       time.Now(),
		streamClose: make(chan struct{}),
	}
	s.bt.Store(db.Batch(engine.BatchOptions{MaxTxns: cfg.BatchSize, FlushInterval: cfg.FlushInterval}))
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	gated := func(h http.HandlerFunc) http.HandlerFunc { return s.admit(h) }
	s.mux.HandleFunc("POST /exec", gated(s.handleExec))
	s.mux.HandleFunc("POST /query", gated(s.handleQuery))
	s.mux.HandleFunc("GET /views/{name}", gated(s.handleView))
	s.mux.HandleFunc("POST /ddl", gated(s.handleDDL))
	s.mux.HandleFunc("POST /session", gated(s.handleSession))
	s.mux.HandleFunc("POST /checkpoint", gated(s.handleCheckpoint))
	// Subscription streams are long-lived: they hold no admission slot
	// (the semaphore is for request-scoped data-plane work) and are exempt
	// from the request timeout (Handler checks the path).
	s.mux.HandleFunc("GET /subscribe/{name}", s.handleSubscribe)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("POST /reopen", s.handleReopen)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// admit wraps a data-plane handler with the admission semaphore: the
// request holds one slot end to end (including its wait for the batch
// flush), and when every slot is taken the request is shed immediately —
// a fast 503 with Retry-After beats a slow timeout, and keeps a queue
// from building in front of the engine locks.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeErrorCode(w, http.StatusServiceUnavailable, codeOverloaded,
					fmt.Errorf("server: overloaded (%d requests in flight); retry later", cap(s.inflight)))
				return
			}
		}
		h(w, r)
	}
}

// Handler returns the server's HTTP handler: the route mux wrapped with
// the request counter, the body-size cap and the request timeout.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		if s.cfg.RequestTimeout > 0 && !strings.HasPrefix(r.URL.Path, "/subscribe/") {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Batcher exposes the server's group-commit handle (tests, stats).
func (s *Server) Batcher() *engine.Batcher { return s.bt.Load() }

// Drain is the graceful-shutdown tail, run after the HTTP listener has
// stopped accepting and in-flight requests have finished: it flushes and
// closes the batcher (every staged transaction commits), then writes a
// final checkpoint when durability is enabled. When the engine is in
// read-only degraded mode the staged batch cannot flush — it is discarded
// (it was never acknowledged) and the degradation error is reported.
// Idempotent.
// DisconnectSubscribers ends every open GET /subscribe stream. Call it
// before http.Server.Shutdown — Shutdown waits for in-flight handlers,
// and a subscription handler never returns while its client stays
// connected. Idempotent; Drain calls it too.
func (s *Server) DisconnectSubscribers() {
	s.streamOnce.Do(func() { close(s.streamClose) })
}

func (s *Server) Drain() error {
	s.drainOnce.Do(func() {
		s.DisconnectSubscribers()
		bt := s.bt.Load()
		if roErr := s.db.ReadOnly(); roErr != nil {
			bt.Discard(roErr)
			s.drainErr = roErr
			return
		}
		s.drainErr = bt.Close()
		if s.db.Durable() {
			if err := s.db.Checkpoint(); err != nil && s.drainErr == nil {
				s.drainErr = err
			}
		}
	})
	return s.drainErr
}

// --- response helpers -------------------------------------------------------

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	OK            bool   `json:"ok"`
	Error         string `json:"error"`
	Indeterminate bool   `json:"indeterminate,omitempty"`
	// Code classifies machine-actionable failures: "read_only" (the
	// engine degraded after a storage failure; writes fail until
	// POST /reopen succeeds) and "overloaded" (shed by the admission
	// limiter; honor Retry-After).
	Code string `json:"code,omitempty"`
}

// Machine-actionable error codes carried in errorResponse.Code.
const (
	codeReadOnly   = "read_only"
	codeOverloaded = "overloaded"
)

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.errs.Add(1)
	if errors.Is(err, engine.ErrReadOnly) {
		// A degraded engine rejects every write deterministically: not a
		// client error and not indeterminate — surface it as typed 503 no
		// matter which handler hit it.
		s.writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: err.Error(), Code: codeReadOnly})
		return
	}
	s.writeJSON(w, code, errorResponse{Error: err.Error(), Indeterminate: code >= 500})
}

func (s *Server) writeErrorCode(w http.ResponseWriter, code int, errCode string, err error) {
	s.errs.Add(1)
	s.writeJSON(w, code, errorResponse{Error: err.Error(), Code: errCode})
}

// decodeBody decodes a JSON request body into v, rejecting trailing
// garbage. Errors are client errors: 400, or 413 when the body-size cap
// tripped.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	err := dec.Decode(v)
	if err == nil {
		if trailing := dec.Decode(new(json.RawMessage)); trailing == io.EOF {
			return true
		}
		err = fmt.Errorf("server: trailing data after JSON body")
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("server: request body exceeds %d bytes", tooLarge.Limit))
		return false
	}
	s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
	return false
}

// sessionOf resolves the request's session (header first, then the
// optional body field already decoded by the caller).
func (s *Server) sessionOf(r *http.Request, bodyID string) *session {
	id := r.Header.Get("X-Birds-Session")
	if id == "" {
		id = bodyID
	}
	return s.sessions.get(id)
}

// --- /exec ------------------------------------------------------------------

type execRequest struct {
	SQL     string     `json:"sql,omitempty"`
	Stmts   []stmtJSON `json:"stmts,omitempty"`
	Session string     `json:"session,omitempty"`
}

type execResponse struct {
	OK      bool   `json:"ok"`
	Seq     uint64 `json:"seq"`
	Pending int    `json:"pending"`
}

// handleExec runs one DML transaction through the group-commit pipeline
// and acknowledges it only after its batch has flushed (see the package
// consistency contract). The response's seq is the transaction's position
// in the server's serialization order.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	s.execs.Add(1)
	var req execRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if sess := s.sessionOf(r, req.Session); sess != nil {
		sess.touch(true)
	}

	var stmts []engine.Statement
	switch {
	case req.SQL != "" && len(req.Stmts) > 0:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf(`server: give "sql" or "stmts", not both`))
		return
	case req.SQL != "":
		parsed, err := engine.ParseSQL(req.SQL)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		stmts = parsed
	case len(req.Stmts) > 0:
		for _, sj := range req.Stmts {
			st, err := decodeStatement(sj)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
			stmts = append(stmts, st)
		}
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf(`server: empty transaction (need "sql" or "stmts")`))
		return
	}
	for _, st := range stmts {
		if decl := s.db.Decl(st.Target); decl != nil {
			if err := typeCheckStatement(decl, st); err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
		}
	}

	bt := s.bt.Load()
	seq, commit, err := bt.ExecAsync(stmts...)
	if err != nil {
		// Rejected at admission: nothing was staged, the transaction
		// definitively did not happen. A degraded engine makes that a
		// typed 503 (writeError detects ErrReadOnly); anything else is a
		// client error.
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	select {
	case <-commit.Done():
		if cerr := commit.Err(); cerr != nil {
			// The flush failed (WAL append error); the engine is now in
			// read-only degraded mode and the transaction did not commit.
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server: commit failed: %w", cerr))
			return
		}
	case <-r.Context().Done():
		s.writeError(w, http.StatusGatewayTimeout, fmt.Errorf("server: timed out waiting for the batch flush (transaction admitted; it may still commit)"))
		return
	}
	s.writeJSON(w, http.StatusOK, execResponse{OK: true, Seq: seq, Pending: bt.Pending()})
}

// --- /query and /views/{name} ----------------------------------------------

type queryRequest struct {
	Rel     string   `json:"rel,omitempty"`
	Rels    []string `json:"rels,omitempty"`
	Session string   `json:"session,omitempty"`
}

type queryResponse struct {
	OK        bool           `json:"ok"`
	Relations []relationJSON `json:"relations"`
}

// handleQuery snapshots one or more relations under a single lock
// acquisition — the multi-relation form is atomic across the requested
// relations, which is what the torn-batch checker polls.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if sess := s.sessionOf(r, req.Session); sess != nil {
		sess.touch(false)
	}
	names := req.Rels
	if req.Rel != "" {
		names = append([]string{req.Rel}, names...)
	}
	if len(names) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf(`server: query needs "rel" or "rels"`))
		return
	}
	rels, err := s.db.GetAll(names...)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	resp := queryResponse{OK: true}
	for _, n := range names {
		resp.Relations = append(resp.Relations, encodeRelation(n, rels[n]))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleView snapshots one registered view.
func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	name := r.PathValue("name")
	if !s.db.IsView(name) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: unknown view %q", name))
		return
	}
	rel, err := s.db.Get(name)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, queryResponse{OK: true, Relations: []relationJSON{encodeRelation(name, rel)}})
}

// --- /ddl -------------------------------------------------------------------

type ddlRequest struct {
	// Source holds "source name(col:type, ...)." declarations; every
	// declared relation becomes a base table.
	Source string `json:"source,omitempty"`
	// View holds a putback program; the declared view is registered with
	// its strategy as the INSTEAD OF trigger.
	View        string `json:"view,omitempty"`
	Incremental bool   `json:"incremental,omitempty"`
	// SkipValidation trusts the strategy without running Algorithm 1;
	// ExpectedGet (one rule per entry) is then required.
	SkipValidation bool     `json:"skip_validation,omitempty"`
	ExpectedGet    []string `json:"expected_get,omitempty"`
	Session        string   `json:"session,omitempty"`
}

type ddlResponse struct {
	OK      bool     `json:"ok"`
	Created []string `json:"created"`
}

// handleDDL creates base tables or an updatable view. The pending batch is
// flushed first, so the DDL sees (and its initial materialization covers)
// every admitted transaction.
func (s *Server) handleDDL(w http.ResponseWriter, r *http.Request) {
	var req ddlRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if sess := s.sessionOf(r, req.Session); sess != nil {
		sess.touch(true)
	}
	if (req.Source == "") == (req.View == "") {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf(`server: give exactly one of "source" or "view"`))
		return
	}
	if err := s.bt.Load().Flush(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	var created []string
	if req.Source != "" {
		prog, err := datalog.Parse(req.Source)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(prog.Sources) == 0 || len(prog.Rules) > 0 || prog.View != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(`server: "source" must hold only source declarations`))
			return
		}
		for _, d := range prog.Sources {
			if err := s.db.CreateTable(d); err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
			created = append(created, d.Name)
		}
	} else {
		opts := engine.ViewOptions{Incremental: req.Incremental, SkipValidation: req.SkipValidation}
		for _, g := range req.ExpectedGet {
			rule, err := datalog.ParseRule(g)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad expected_get rule %q: %w", g, err))
				return
			}
			opts.ExpectedGet = append(opts.ExpectedGet, rule)
		}
		v, err := s.db.CreateView(req.View, opts)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		created = append(created, v.Decl.Name)
	}
	s.writeJSON(w, http.StatusOK, ddlResponse{OK: true, Created: created})
}

// --- sessions and admin -----------------------------------------------------

type sessionResponse struct {
	OK bool   `json:"ok"`
	ID string `json:"id"`
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.create()
	s.writeJSON(w, http.StatusOK, sessionResponse{OK: true, ID: sess.ID})
}

type flushResponse struct {
	OK      bool   `json:"ok"`
	Flushed int    `json:"flushed"`
	Seq     uint64 `json:"seq"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	bt := s.bt.Load()
	pending := bt.Pending()
	if err := bt.Flush(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.writeJSON(w, http.StatusOK, flushResponse{OK: true, Flushed: pending, Seq: bt.Stats().Seq})
}

type checkpointResponse struct {
	OK  bool   `json:"ok"`
	LSN uint64 `json:"lsn"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.db.Durable() {
		s.writeError(w, http.StatusConflict, fmt.Errorf("server: durability is not enabled"))
		return
	}
	// Flush first so the checkpoint covers every acknowledged transaction.
	if err := s.bt.Load().Flush(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err := s.db.Checkpoint(); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, checkpointResponse{OK: true, LSN: s.db.LastLSN()})
}

type reopenResponse struct {
	OK  bool   `json:"ok"`
	LSN uint64 `json:"lsn"`
}

// handleReopen clears read-only degraded mode: it retires the degraded
// group-commit handle (its staged transactions were never acknowledged),
// re-runs recovery from the durability directory via DB.Reopen, and
// installs a fresh handle. 409 when the engine is not degraded; on a
// failed recovery (the disk is still hostile) the server stays degraded
// and the call can be retried. Never shed by the admission limiter — this
// is how an operator gets the server back.
func (s *Server) handleReopen(w http.ResponseWriter, r *http.Request) {
	s.reopenMu.Lock()
	defer s.reopenMu.Unlock()
	roErr := s.db.ReadOnly()
	if roErr == nil {
		s.writeError(w, http.StatusConflict, fmt.Errorf("server: engine is not in read-only mode"))
		return
	}
	old := s.bt.Load()
	old.Discard(roErr)
	err := s.db.Reopen()
	// Degraded or not, requests need a live (non-discarded) handle; on a
	// failed reopen its admissions fail fast with the typed read-only
	// error.
	s.bt.Store(s.db.Batch(engine.BatchOptions{MaxTxns: s.cfg.BatchSize, FlushInterval: s.cfg.FlushInterval}))
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("server: reopen: %w", err))
		return
	}
	s.writeJSON(w, http.StatusOK, reopenResponse{OK: true, LSN: s.db.LastLSN()})
}

// --- /stats and /healthz ----------------------------------------------------

type statsResponse struct {
	OK     bool         `json:"ok"`
	Server serverStats  `json:"server"`
	Batch  batcherStats `json:"batcher"`
	Engine engineStats  `json:"engine"`
	WAL    walStats     `json:"wal"`
	CDC    cdcStats     `json:"cdc"`
}

// cdcStats is the subscription hub's slice of GET /stats and GET /healthz:
// the engine-level hub counters plus the server's HTTP stream gauges.
type cdcStats struct {
	Subscribers  int    `json:"subscribers"`
	Streams      int64  `json:"streams"`
	StreamsTotal uint64 `json:"streams_total"`
	Seq          uint64 `json:"seq"`
	Published    uint64 `json:"published"`
	Delivered    uint64 `json:"delivered"`
	Dropped      uint64 `json:"dropped"`
	Resyncs      uint64 `json:"resyncs"`
	MaxLagSeqs   uint64 `json:"max_lag_seqs"`
}

func (s *Server) cdcStats() cdcStats {
	hs := s.db.CDCStats()
	return cdcStats{
		Subscribers:  hs.Subscribers,
		Streams:      s.streamsActive.Load(),
		StreamsTotal: s.streamsTotal.Load(),
		Seq:          hs.Seq,
		Published:    hs.Published,
		Delivered:    hs.Delivered,
		Dropped:      hs.Dropped,
		Resyncs:      hs.Resyncs,
		MaxLagSeqs:   hs.MaxLagSeqs,
	}
}

type serverStats struct {
	UptimeMS       int64          `json:"uptime_ms"`
	Requests       uint64         `json:"requests"`
	Execs          uint64         `json:"execs"`
	Queries        uint64         `json:"queries"`
	Errors         uint64         `json:"errors"`
	Shed           uint64         `json:"shed"`
	QueueDepth     int            `json:"queue_depth"`
	MaxInflight    int            `json:"max_inflight"`
	ReadOnly       bool           `json:"readonly"`
	Sessions       int            `json:"sessions"`
	ActiveSessions int            `json:"active_sessions"`
	SessionDetail  []sessionStats `json:"session_detail,omitempty"`
}

type batcherStats struct {
	Admitted      uint64 `json:"admitted"`
	Direct        uint64 `json:"direct"`
	Seq           uint64 `json:"seq"`
	Flushes       uint64 `json:"flushes"`
	FlushedTxns   uint64 `json:"flushed_txns"`
	FlushedRows   uint64 `json:"flushed_rows"`
	CoalescedRows uint64 `json:"coalesced_rows"`
	Pending       int    `json:"pending"`
}

type relationStat struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Rows        int    `json:"rows"`
	Incremental bool   `json:"incremental,omitempty"`
}

type engineStats struct {
	Relations []relationStat `json:"relations"`
}

type walStats struct {
	Durable bool   `json:"durable"`
	LastLSN uint64 `json:"last_lsn"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	bs := s.bt.Load().Stats()
	resp := statsResponse{
		OK: true,
		Server: serverStats{
			UptimeMS:    time.Since(s.start).Milliseconds(),
			Requests:    s.requests.Load(),
			Execs:       s.execs.Load(),
			Queries:     s.queries.Load(),
			Errors:      s.errs.Load(),
			Shed:        s.shed.Load(),
			QueueDepth:  len(s.inflight),
			MaxInflight: cap(s.inflight),
			ReadOnly:    s.db.ReadOnly() != nil,
		},
		Batch: batcherStats{
			Admitted:      bs.Admitted,
			Direct:        bs.Direct,
			Seq:           bs.Seq,
			Flushes:       bs.Flushes,
			FlushedTxns:   bs.FlushedTxns,
			FlushedRows:   bs.FlushedRows,
			CoalescedRows: bs.CoalescedRows,
			Pending:       bs.Pending,
		},
		WAL: walStats{Durable: s.db.Durable(), LastLSN: s.db.LastLSN()},
		CDC: s.cdcStats(),
	}
	detail, active := s.sessions.stats(time.Minute)
	resp.Server.Sessions = len(detail)
	resp.Server.ActiveSessions = active
	if strings.EqualFold(r.URL.Query().Get("sessions"), "1") || strings.EqualFold(r.URL.Query().Get("sessions"), "true") {
		resp.Server.SessionDetail = detail
	}
	for _, info := range s.db.Relations() {
		rel, err := s.db.Get(info.Name)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Engine.Relations = append(resp.Engine.Relations, relationStat{
			Name: info.Name, Kind: info.Kind, Rows: rel.Len(), Incremental: info.Incremental,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type healthzResponse struct {
	OK       bool     `json:"ok"`
	ReadOnly bool     `json:"readonly"`
	CDC      cdcStats `json:"cdc"`
}

// handleHealthz is the liveness probe: 200 as long as the server answers,
// INCLUDING in read-only degraded mode (the process is alive and serving
// reads — restarting it would not help a broken disk). The body carries
// the degraded flag for probes that want to alert on it. Never shed by
// the admission limiter.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthzResponse{OK: true, ReadOnly: s.db.ReadOnly() != nil, CDC: s.cdcStats()})
}
