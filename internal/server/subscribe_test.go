package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"birds/internal/engine"
	"birds/internal/value"
)

// Tests for the GET /subscribe/{view} NDJSON stream: snapshot-then-deltas
// over real HTTP, resync on a deliberately tiny buffer, idle heartbeats,
// and the hub counters surfaced on /stats and /healthz.

// streamClient wraps one open subscription stream with deadline-guarded
// line reads (a stuck stream fails the test instead of hanging it).
type streamClient struct {
	t     *testing.T
	resp  *http.Response
	lines chan string
	errs  chan error
}

func openStream(t *testing.T, url string) *streamClient {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		t.Fatalf("subscribe: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := &streamClient{t: t, resp: resp, lines: make(chan string, 64), errs: make(chan error, 1)}
	go func() {
		r := bufio.NewScanner(resp.Body)
		r.Buffer(make([]byte, 0, 64*1024), 64<<20)
		for r.Scan() {
			sc.lines <- r.Text()
		}
		sc.errs <- r.Err()
	}()
	t.Cleanup(sc.close)
	return sc
}

func (sc *streamClient) close() { sc.resp.Body.Close() }

// next returns the next decoded stream event, failing the test after the
// deadline.
func (sc *streamClient) next(timeout time.Duration) streamEvent {
	sc.t.Helper()
	select {
	case line := <-sc.lines:
		var ev streamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			sc.t.Fatalf("bad stream line %q: %v", line, err)
		}
		return ev
	case err := <-sc.errs:
		sc.t.Fatalf("stream ended: %v", err)
	case <-time.After(timeout):
		sc.t.Fatalf("no stream event within %v", timeout)
	}
	panic("unreachable")
}

// nextData skips pings and returns the next snapshot/delta/resync event.
func (sc *streamClient) nextData(timeout time.Duration) streamEvent {
	sc.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ev := sc.next(time.Until(deadline))
		if ev.Type != "ping" {
			return ev
		}
	}
}

func itemRow(id int, name string, price int) []wireValue {
	return []wireValue{{value.Int(int64(id))}, {value.Str(name)}, {value.Int(int64(price))}}
}

func execInsertItem(t *testing.T, base string, id int, name string, price int) {
	t.Helper()
	code, data := postJSON(t, http.DefaultClient, base+"/exec", "", map[string]any{
		"stmts": []stmtJSON{{Op: "insert", Target: "items", Row: itemRow(id, name, price)}},
	})
	if code != http.StatusOK {
		t.Fatalf("exec: HTTP %d: %s", code, data)
	}
}

func TestSubscribeSnapshotThenDeltas(t *testing.T) {
	srv, ts := startServer(t, Config{BatchSize: 1, FlushInterval: time.Millisecond})
	t.Cleanup(srv.DisconnectSubscribers) // end streams before ts.Close waits on handlers
	execInsertItem(t, ts.URL, 1, "yacht", 9000)

	sc := openStream(t, ts.URL+"/subscribe/luxury")
	snap := sc.nextData(5 * time.Second)
	if snap.Type != "snapshot" || snap.View != "luxury" || snap.Count != 1 || len(snap.Rows) != 1 {
		t.Fatalf("want 1-row snapshot of luxury, got %+v", snap)
	}

	execInsertItem(t, ts.URL, 2, "jet", 50000) // above the bar: luxury delta
	ev := sc.nextData(5 * time.Second)
	if ev.Type != "delta" || len(ev.Insert) != 1 || len(ev.Delete) != 0 {
		t.Fatalf("want +1 delta, got %+v", ev)
	}
	if ev.Seq <= snap.Seq {
		t.Fatalf("delta seq %d not after snapshot seq %d", ev.Seq, snap.Seq)
	}
	if got := ev.Insert[0][0].v; !got.Equal(value.Int(2)) {
		t.Fatalf("delta row id = %v", got)
	}

	// A cheap item does not change luxury: subscribers see nothing for it,
	// then the next luxury-relevant write arrives in order.
	execInsertItem(t, ts.URL, 3, "pencil", 2)
	execInsertItem(t, ts.URL, 4, "villa", 800000)
	ev = sc.nextData(5 * time.Second)
	if ev.Type != "delta" || len(ev.Insert) != 1 || !ev.Insert[0][0].v.Equal(value.Int(4)) {
		t.Fatalf("want villa delta (pencil skipped), got %+v", ev)
	}
}

func TestSubscribeResyncOnTinyBuffer(t *testing.T) {
	srv, ts := startServer(t, Config{BatchSize: 1, FlushInterval: time.Millisecond})
	t.Cleanup(srv.DisconnectSubscribers)

	// A raw stream with NO background reader: the client genuinely stalls.
	resp, err := http.Get(ts.URL + "/subscribe/luxury?buffer=1&policy=drop")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: HTTP %d", resp.StatusCode)
	}
	// Watchdog: a wedged test (e.g. the drop never happens and Scan blocks
	// forever) fails with a closed stream instead of hanging the run.
	watchdog := time.AfterFunc(60*time.Second, func() { resp.Body.Close() })
	defer watchdog.Stop()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 256<<20)
	readEvent := func() streamEvent {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended: %v", sc.Err())
		}
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line: %v", err)
		}
		return ev
	}
	if ev := readEvent(); ev.Type != "snapshot" {
		t.Fatalf("want snapshot first, got %+v", ev)
	}

	// Overflow the 1-slot ring. The handler drains the ring as fast as it
	// can write to the socket, so merely not reading isn't enough: the
	// rows are large (256 KiB names) so the stalled client's TCP buffers
	// fill, wedging the handler mid-Write while further writes overflow
	// the ring and mark the subscription lost. The writes themselves must
	// never block on the wedged stream (drop policy).
	const n = 40
	pad := make([]byte, 256<<10)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < n; i++ {
		execInsertItem(t, ts.URL, 100+i, string(pad), 5000+i)
	}

	// Drain: some buffered deltas may arrive, then exactly one resync
	// carrying the complete current state, then healthy deltas again.
	var resync streamEvent
	for resync.Type == "" {
		if ev := readEvent(); ev.Type == "resync" {
			resync = ev
		}
	}
	if resync.Count != n {
		t.Fatalf("resync has %d rows, want %d", resync.Count, n)
	}
	execInsertItem(t, ts.URL, 999, "diamond", 7777)
	for {
		ev := readEvent()
		if ev.Type == "ping" {
			continue
		}
		if ev.Type != "delta" || len(ev.Insert) != 1 {
			t.Fatalf("stream not healthy after resync: %+v", ev)
		}
		break
	}

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st struct {
		CDC cdcStats `json:"cdc"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CDC.Resyncs != 1 || st.CDC.Dropped == 0 || st.CDC.Streams != 1 {
		t.Fatalf("hub counters after forced resync: %+v", st.CDC)
	}
}

func TestSubscribeHeartbeat(t *testing.T) {
	srv, ts := startServer(t, Config{Heartbeat: 30 * time.Millisecond})
	t.Cleanup(srv.DisconnectSubscribers)

	sc := openStream(t, ts.URL+"/subscribe/items")
	if ev := sc.next(5 * time.Second); ev.Type != "snapshot" {
		t.Fatalf("want snapshot, got %+v", ev)
	}
	// No writes: the stream must still emit pings at the configured
	// interval so clients (and proxies) see a live connection.
	for i := 0; i < 3; i++ {
		ev := sc.next(2 * time.Second)
		if ev.Type != "ping" {
			t.Fatalf("want ping on idle stream, got %+v", ev)
		}
	}
}

func TestSubscribeErrors(t *testing.T) {
	srv, ts := startServer(t, Config{})
	t.Cleanup(srv.DisconnectSubscribers)

	for url, want := range map[string]int{
		"/subscribe/nope":                http.StatusNotFound,
		"/subscribe/items?policy=weird":  http.StatusBadRequest,
		"/subscribe/items?buffer=banana": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: HTTP %d, want %d", url, resp.StatusCode, want)
		}
	}
}

func TestHealthzReportsCDC(t *testing.T) {
	srv, ts := startServer(t, Config{BatchSize: 1, FlushInterval: time.Millisecond})
	t.Cleanup(srv.DisconnectSubscribers)

	sc := openStream(t, ts.URL+"/subscribe/luxury")
	sc.nextData(5 * time.Second) // snapshot delivered

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		OK  bool     `json:"ok"`
		CDC cdcStats `json:"cdc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.CDC.Subscribers != 1 || hz.CDC.StreamsTotal != 1 || hz.CDC.Delivered == 0 {
		t.Fatalf("healthz cdc: ok=%v %+v", hz.OK, hz.CDC)
	}
}

// TestSubscribeFlushOrdering: the handler flushes the batcher before
// subscribing, so the initial snapshot covers every transaction admitted
// to the group-commit batch before the stream opened.
func TestSubscribeFlushOrdering(t *testing.T) {
	// Big batch + long interval: without the pre-subscribe flush the
	// admitted-but-unflushed write would be missing from the snapshot.
	srv, ts := startServer(t, Config{BatchSize: 1024, FlushInterval: time.Minute})
	t.Cleanup(srv.DisconnectSubscribers)

	// Admit without waiting for a flush (the server-internal equivalent
	// of a concurrent writer whose batch has not filled yet).
	if err := srv.bt.Load().Exec(engine.Insert("items",
		value.Int(1), value.Str("yacht"), value.Int(9000))); err != nil {
		t.Fatal(err)
	}

	sc := openStream(t, ts.URL+"/subscribe/luxury")
	snap := sc.nextData(5 * time.Second)
	if snap.Type != "snapshot" || snap.Count != 1 {
		t.Fatalf("snapshot must include the admitted write, got %+v", snap)
	}
}
