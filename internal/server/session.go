package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Sessions are the server's client identities: every request may carry a
// session id (the X-Birds-Session header or the request's "session" field),
// and the registry tracks per-session traffic counters. Sessions do NOT
// partition the write pipeline — that is the point: every session's
// transactions are multiplexed onto the ONE group-commit batcher, so N
// concurrent sessions amortize into single maintenance passes and single
// WAL fsyncs. A session is bookkeeping (who is connected, how much are they
// doing), not an isolation domain; the consistency contract is the
// batcher's (see the README's "Serving" section).

// session is one registered client identity.
type session struct {
	ID      string    `json:"id"`
	Created time.Time `json:"created"`

	mu       sync.Mutex
	lastSeen time.Time
	execs    uint64
	queries  uint64
}

func (s *session) touch(exec bool) {
	s.mu.Lock()
	s.lastSeen = time.Now()
	if exec {
		s.execs++
	} else {
		s.queries++
	}
	s.mu.Unlock()
}

// sessionStats is the per-session slice of GET /stats.
type sessionStats struct {
	ID       string    `json:"id"`
	Created  time.Time `json:"created"`
	LastSeen time.Time `json:"last_seen"`
	Execs    uint64    `json:"execs"`
	Queries  uint64    `json:"queries"`
}

// sessionRegistry tracks the sessions the server has seen.
type sessionRegistry struct {
	mu       sync.Mutex
	sessions map[string]*session
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{sessions: make(map[string]*session)}
}

// create registers a fresh session with a random id.
func (r *sessionRegistry) create() *session {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on the supported platforms; fall back to
		// a time-derived id rather than refusing the session.
		now := time.Now().UnixNano()
		for i := range buf {
			buf[i] = byte(now >> (8 * i))
		}
	}
	id := hex.EncodeToString(buf[:])
	s := &session{ID: id, Created: time.Now(), lastSeen: time.Now()}
	r.mu.Lock()
	r.sessions[id] = s
	r.mu.Unlock()
	return s
}

// get resolves a session id, registering unknown non-empty ids on first
// use (a client may mint its own ids; the registry just tracks them). An
// empty id resolves to nil — anonymous requests are served but not tracked
// per-session.
func (r *sessionRegistry) get(id string) *session {
	if id == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[id]; ok {
		return s
	}
	s := &session{ID: id, Created: time.Now(), lastSeen: time.Now()}
	r.sessions[id] = s
	return s
}

// stats snapshots every session's counters, plus the count of sessions
// active within the given window.
func (r *sessionRegistry) stats(activeWindow time.Duration) (all []sessionStats, active int) {
	cutoff := time.Now().Add(-activeWindow)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sessions {
		s.mu.Lock()
		st := sessionStats{ID: s.ID, Created: s.Created, LastSeen: s.lastSeen, Execs: s.execs, Queries: s.queries}
		s.mu.Unlock()
		if st.LastSeen.After(cutoff) {
			active++
		}
		all = append(all, st)
	}
	return all, active
}
