package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"birds/internal/engine"
	"birds/internal/value"
	"birds/internal/wal"
)

// Degraded-mode and overload-protection tests: the server must surface a
// storage-poisoned engine as typed 503s on writes while reads, health and
// stats keep answering; POST /reopen must recover in place; and the
// admission limiter must shed excess load with 503 + Retry-After instead
// of queueing without bound.

// startDurableServer boots the serve fixture with durability on a
// fault-injectable filesystem.
func startDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *wal.FaultFS) {
	t.Helper()
	ffs := wal.NewFaultFS(nil, 1)
	db := serveFixture(t)
	if err := db.EnableDurability(engine.DurabilityOptions{
		Dir:  t.TempDir(),
		Sync: wal.SyncOnCommit,
		FS:   ffs,
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts, ffs
}

// itemTxn is a single-insert transaction in wire and replay form.
func itemTxn(t *testing.T, iid, price int) wireTxn {
	t.Helper()
	return decodeWireTxn(t, map[string]any{"stmts": []stmtJSON{{
		Op: "insert", Target: "items",
		Row: []wireValue{
			{value.Int(int64(iid))},
			{value.Str(fmt.Sprintf("item-%d", iid))},
			{value.Int(int64(price))},
		},
	}}})
}

// fetchStats decodes the server block of GET /stats.
func fetchStats(t *testing.T, client *http.Client, base string) serverStats {
	t.Helper()
	code, data := postGet(t, client, base+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: HTTP %d: %s", code, data)
	}
	var resp struct {
		Server serverStats `json:"server"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decode stats %q: %v", data, err)
	}
	return resp.Server
}

func decodeError(t *testing.T, data []byte) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("decode error response %q: %v", data, err)
	}
	return er
}

func TestServeReadOnlyDegradation(t *testing.T) {
	_, ts, ffs := startDurableServer(t, Config{BatchSize: 1, FlushInterval: time.Millisecond})
	httpc := ts.Client()
	var acked []wireTxn

	// Reopen on a healthy server is a client error, not a state change.
	if code, data := postJSON(t, httpc, ts.URL+"/reopen", "", map[string]any{}); code != http.StatusConflict {
		t.Fatalf("reopen while healthy: HTTP %d: %s", code, data)
	}

	for i := 0; i < 5; i++ {
		txn := itemTxn(t, i, 1500)
		if code, data := postJSON(t, httpc, ts.URL+"/exec", "", txn.body); code != http.StatusOK {
			t.Fatalf("warmup exec %d: HTTP %d: %s", i, code, data)
		}
		acked = append(acked, txn)
	}

	// The disk turns hostile: the next durable write poisons the log. That
	// first transaction's durability is indeterminate at the client — it
	// must NOT be acknowledged, which is all the oracle needs.
	ffs.Inject(&wal.Rule{Op: wal.OpWrite, Path: "wal-", Err: fmt.Errorf("injected EIO"), Once: true})
	if code, data := postJSON(t, httpc, ts.URL+"/exec", "", itemTxn(t, 100, 1500).body); code == http.StatusOK {
		t.Fatalf("exec through the storage fault was acknowledged: %s", data)
	}

	// Every subsequent write is the deterministic typed 503.
	code, data := postJSON(t, httpc, ts.URL+"/exec", "", itemTxn(t, 101, 1500).body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("exec while degraded: HTTP %d: %s", code, data)
	}
	if er := decodeError(t, data); er.Code != codeReadOnly || er.Indeterminate {
		t.Fatalf("exec while degraded: got %+v, want code=%q indeterminate=false", er, codeReadOnly)
	}

	// Reads, health and stats keep answering.
	rels := fetchRels(t, httpc, ts.URL, "items", "luxury")
	if rels["items"].Len() != 5 {
		t.Fatalf("degraded read: items has %d rows, want 5", rels["items"].Len())
	}
	var hz healthzResponse
	if code, data := postGet(t, httpc, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while degraded: HTTP %d: %s", code, data)
	} else if err := json.Unmarshal(data, &hz); err != nil || !hz.OK || !hz.ReadOnly {
		t.Fatalf("healthz while degraded: %s (err=%v), want ok=true readonly=true", data, err)
	}
	if st := fetchStats(t, httpc, ts.URL); !st.ReadOnly {
		t.Fatalf("stats while degraded: readonly=false, want true")
	}

	// The disk heals; POST /reopen recovers in place and restores writes.
	ffs.Clear()
	code, data = postJSON(t, httpc, ts.URL+"/reopen", "", map[string]any{})
	if code != http.StatusOK {
		t.Fatalf("reopen: HTTP %d: %s", code, data)
	}
	var rr reopenResponse
	if err := json.Unmarshal(data, &rr); err != nil || !rr.OK {
		t.Fatalf("reopen: %s (err=%v)", data, err)
	}
	if code, data := postGet(t, httpc, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after reopen: HTTP %d: %s", code, data)
	} else if err := json.Unmarshal(data, &hz); err != nil || hz.ReadOnly {
		t.Fatalf("healthz after reopen: %s (err=%v), want readonly=false", data, err)
	}
	for i := 200; i < 205; i++ {
		txn := itemTxn(t, i, 500+i)
		if code, data := postJSON(t, httpc, ts.URL+"/exec", "", txn.body); code != http.StatusOK {
			t.Fatalf("exec after reopen: HTTP %d: %s", code, data)
		}
		acked = append(acked, txn)
	}

	// Bit-identical to a serial replay of exactly the acknowledged
	// transactions: the two failed writes left no trace.
	if code, data := postJSON(t, httpc, ts.URL+"/flush", "", map[string]any{}); code != http.StatusOK {
		t.Fatalf("flush: HTTP %d: %s", code, data)
	}
	got := fetchRels(t, httpc, ts.URL, serveRels...)
	ref := serveFixture(t)
	for _, txn := range acked {
		if err := ref.Exec(txn.stmts...); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.GetAll(serveRels...)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range serveRels {
		if !got[name].Equal(want[name]) {
			t.Fatalf("%s after reopen: server %v, replay %v", name, got[name].Sorted(), want[name].Sorted())
		}
	}
}

// postGet is postJSON's GET sibling.
func postGet(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf
}

func TestServeOverloadShedding(t *testing.T) {
	// One admission slot, no count trigger, no timer in range: the first
	// exec parks in its flush wait holding the slot until /flush runs.
	_, ts := startServer(t, Config{
		BatchSize:      -1,
		FlushInterval:  time.Hour,
		RequestTimeout: 30 * time.Second,
		MaxInflight:    1,
	})
	httpc := ts.Client()

	type result struct {
		code int
		data []byte
	}
	first := make(chan result, 1)
	go func() {
		code, data := postJSON(t, httpc, ts.URL+"/exec", "", itemTxn(t, 1, 1500).body)
		first <- result{code, data}
	}()

	// The blocked exec occupies the slot; /stats is never shed, so it can
	// watch the queue fill.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fetchStats(t, httpc, ts.URL)
		if st.QueueDepth == 1 {
			if st.MaxInflight != 1 {
				t.Fatalf("stats: max_inflight = %d, want 1", st.MaxInflight)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first exec never occupied the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Every slot taken: the next data-plane request is shed immediately.
	buf, err := json.Marshal(itemTxn(t, 2, 1500).body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/exec", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	shedData, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed exec: HTTP %d: %s", resp.StatusCode, shedData)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed exec: no Retry-After header")
	}
	if er := decodeError(t, shedData); er.Code != codeOverloaded {
		t.Fatalf("shed exec: got %+v, want code=%q", er, codeOverloaded)
	}
	if st := fetchStats(t, httpc, ts.URL); st.Shed == 0 {
		t.Fatal("stats: shed = 0 after a shed request")
	}

	// /flush is never shed — it is how the parked batch commits. The
	// blocked exec must then return 200.
	if code, data := postJSON(t, httpc, ts.URL+"/flush", "", map[string]any{}); code != http.StatusOK {
		t.Fatalf("flush: HTTP %d: %s", code, data)
	}
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("parked exec after flush: HTTP %d: %s", r.code, r.data)
	}
}
