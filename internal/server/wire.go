package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"birds/internal/datalog"
	"birds/internal/engine"
	"birds/internal/value"
)

// This file is the JSON wire format of the server: scalar values, DML
// statements, and relations. The value encoding round-trips the engine's
// type system exactly — ints and floats stay distinguishable (an integral
// float is rendered with a trailing ".0"), which is what lets the
// differential harness compare relations fetched over HTTP bit-for-bit
// against an in-process engine.

// wireValue wraps a value.Value with the JSON mapping: null ↔ Null,
// bool ↔ Bool, string ↔ Str, and numbers split by form — a literal with a
// '.' or exponent decodes as Float, anything else as Int.
type wireValue struct{ v value.Value }

func (w *wireValue) UnmarshalJSON(b []byte) error {
	d := json.NewDecoder(bytes.NewReader(b))
	d.UseNumber()
	var raw any
	if err := d.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case nil:
		w.v = value.Null()
	case bool:
		w.v = value.Bool(x)
	case string:
		w.v = value.Str(x)
	case json.Number:
		s := x.String()
		if strings.ContainsAny(s, ".eE") {
			f, err := x.Float64()
			if err != nil {
				return fmt.Errorf("server: bad float literal %q", s)
			}
			w.v = value.Float(f)
			return nil
		}
		i, err := x.Int64()
		if err != nil {
			return fmt.Errorf("server: integer literal %q out of range", s)
		}
		w.v = value.Int(i)
	default:
		return fmt.Errorf("server: row values must be JSON scalars, got %T", x)
	}
	return nil
}

func (w wireValue) MarshalJSON() ([]byte, error) {
	switch w.v.Kind() {
	case value.KindNull:
		return []byte("null"), nil
	case value.KindBool:
		return strconv.AppendBool(nil, w.v.AsBool()), nil
	case value.KindInt:
		return strconv.AppendInt(nil, w.v.AsInt(), 10), nil
	case value.KindFloat:
		f := w.v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("server: cannot encode non-finite float")
		}
		s := strconv.FormatFloat(f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the float/int distinction through the round trip
		}
		return []byte(s), nil
	case value.KindString:
		return json.Marshal(w.v.AsString())
	}
	return nil, fmt.Errorf("server: cannot encode value of kind %v", w.v.Kind())
}

// --- statements ------------------------------------------------------------

// stmtJSON is one DML statement of a structured /exec request.
type stmtJSON struct {
	Op     string      `json:"op"` // "insert" | "delete" | "update"
	Target string      `json:"target"`
	Row    []wireValue `json:"row,omitempty"`
	Set    []setJSON   `json:"set,omitempty"`
	Where  []condJSON  `json:"where,omitempty"`
}

type setJSON struct {
	Col string    `json:"col"`
	Val wireValue `json:"val"`
}

type condJSON struct {
	Col string    `json:"col"`
	Op  string    `json:"op"` // "=", "<>", "<", ">", "<=", ">="
	Val wireValue `json:"val"`
}

func parseCmpOp(s string) (datalog.CmpOp, error) {
	switch s {
	case "=", "==":
		return datalog.OpEq, nil
	case "<>", "!=":
		return datalog.OpNe, nil
	case "<":
		return datalog.OpLt, nil
	case ">":
		return datalog.OpGt, nil
	case "<=":
		return datalog.OpLe, nil
	case ">=":
		return datalog.OpGe, nil
	}
	return 0, fmt.Errorf("server: unknown comparison operator %q", s)
}

// decodeStatement lowers one wire statement into an engine statement.
func decodeStatement(s stmtJSON) (engine.Statement, error) {
	var zero engine.Statement
	if s.Target == "" {
		return zero, fmt.Errorf("server: statement needs a target relation")
	}
	where := make([]engine.Condition, 0, len(s.Where))
	for _, c := range s.Where {
		op, err := parseCmpOp(c.Op)
		if err != nil {
			return zero, err
		}
		where = append(where, engine.Condition{Col: c.Col, Op: op, Val: c.Val.v})
	}
	switch s.Op {
	case "insert":
		if len(s.Row) == 0 {
			return zero, fmt.Errorf("server: insert needs a row")
		}
		row := make(value.Tuple, len(s.Row))
		for i, v := range s.Row {
			row[i] = v.v
		}
		return engine.Statement{Kind: engine.StmtInsert, Target: s.Target, Row: row}, nil
	case "delete":
		return engine.Statement{Kind: engine.StmtDelete, Target: s.Target, Where: where}, nil
	case "update":
		if len(s.Set) == 0 {
			return zero, fmt.Errorf("server: update needs a set clause")
		}
		set := make([]engine.Assignment, 0, len(s.Set))
		for _, a := range s.Set {
			set = append(set, engine.Assignment{Col: a.Col, Val: a.Val.v})
		}
		return engine.Statement{Kind: engine.StmtUpdate, Target: s.Target, Set: set, Where: where}, nil
	}
	return zero, fmt.Errorf("server: unknown statement op %q (want insert, delete or update)", s.Op)
}

// typeCheckStatement enforces the target's declared schema at the wire
// boundary: inserted rows and update assignments must match the declared
// attribute types (the engine core itself only checks arity — declared
// types otherwise inform validation and SQL generation). WHERE literals
// are not type-restricted beyond column existence: comparing an int column
// against a float bound is meaningful.
func typeCheckStatement(decl *datalog.RelDecl, st engine.Statement) error {
	col := func(name string) int {
		for i, a := range decl.Attrs {
			if a.Name == name {
				return i
			}
		}
		return -1
	}
	for i, v := range st.Row {
		if err := checkAttrType(decl, i, v); err != nil {
			return err
		}
	}
	for _, a := range st.Set {
		i := col(a.Col)
		if i < 0 {
			return fmt.Errorf("server: relation %q has no column %q", decl.Name, a.Col)
		}
		if err := checkAttrType(decl, i, a.Val); err != nil {
			return err
		}
	}
	for _, c := range st.Where {
		if col(c.Col) < 0 {
			return fmt.Errorf("server: relation %q has no column %q", decl.Name, c.Col)
		}
	}
	return nil
}

func checkAttrType(decl *datalog.RelDecl, i int, v value.Value) error {
	if i >= len(decl.Attrs) {
		return nil // arity errors are the engine's, with its message
	}
	a := decl.Attrs[i]
	ok := false
	switch a.Type {
	case "int":
		ok = v.Kind() == value.KindInt
	case "float":
		ok = v.Kind() == value.KindFloat || v.Kind() == value.KindInt
	case "bool":
		ok = v.Kind() == value.KindBool
	case "string", "date":
		ok = v.Kind() == value.KindString
	default:
		ok = true // unknown declared type: no constraint to enforce
	}
	if !ok && v.Kind() != value.KindNull {
		return fmt.Errorf("server: column %s.%s is %s, got %s", decl.Name, a.Name, a.Type, v)
	}
	return nil
}

// --- relations -------------------------------------------------------------

// relationJSON is one relation in a query response. Rows are sorted by the
// engine's total value order, so responses are deterministic.
type relationJSON struct {
	Name  string        `json:"name"`
	Arity int           `json:"arity"`
	Count int           `json:"count"`
	Rows  [][]wireValue `json:"rows"`
}

func encodeRelation(name string, r *value.Relation) relationJSON {
	out := relationJSON{Name: name, Arity: r.Arity(), Count: r.Len(), Rows: make([][]wireValue, 0, r.Len())}
	for _, t := range r.Sorted() {
		row := make([]wireValue, len(t))
		for i, v := range t {
			row[i] = wireValue{v}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// decodeRelation rebuilds a value.Relation from a wire relation — the
// client half of the round trip, used by the test harness and birdsload.
func decodeRelation(r relationJSON) *value.Relation {
	rel := value.NewRelation(r.Arity)
	for _, row := range r.Rows {
		t := make(value.Tuple, len(row))
		for i, v := range row {
			t[i] = v.v
		}
		rel.Add(t)
	}
	return rel
}
