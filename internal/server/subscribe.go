package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"birds/internal/cdc"
	"birds/internal/value"
)

// GET /subscribe/{name} — live change-data-capture stream over HTTP.
//
// The response is an unbounded application/x-ndjson stream: one JSON
// object per line, flushed per event, SSE-style. The first line is the
// subscription's snapshot; every later line is either a delta ("insert" /
// "delete" rows at one visibility point — a whole group-commit batch is
// one seq), a resync (the subscriber fell behind or the engine fell back
// to a full refresh: the line carries a fresh full snapshot to restart
// the mirror from), or a ping (heartbeat, carrying the hub's current seq
// so clients can compute their lag even when idle).
//
// Query parameters: buffer (events, default cdc.DefaultBuffer), policy
// ("drop" or "block"), deadline_ms (block policy's publisher deadline),
// session (session id — the stream counts as one long-lived query).
//
// Subscription streams hold no admission slot (they are long-lived; the
// data-plane semaphore is for request-scoped work) and are exempt from the
// request timeout. They end when the client disconnects or the server
// shuts down.

// streamEvent is one NDJSON line of a subscription stream.
type streamEvent struct {
	Type   string        `json:"type"` // "snapshot" | "delta" | "resync" | "ping" | "error"
	View   string        `json:"view,omitempty"`
	Seq    uint64        `json:"seq"`
	Count  int           `json:"count,omitempty"`
	Rows   [][]wireValue `json:"rows,omitempty"`
	Insert [][]wireValue `json:"insert,omitempty"`
	Delete [][]wireValue `json:"delete,omitempty"`
	Lag    uint64        `json:"lag,omitempty"`
	Error  string        `json:"error,omitempty"`
}

func wireRows(ts []value.Tuple) [][]wireValue {
	if len(ts) == 0 {
		return nil
	}
	out := make([][]wireValue, 0, len(ts))
	for _, t := range ts {
		row := make([]wireValue, len(t))
		for i, v := range t {
			row[i] = wireValue{v}
		}
		out = append(out, row)
	}
	return out
}

// encodeStreamEvent renders a subscription event as a wire line. Snapshot
// rows are sorted (deterministic, like query responses); delta rows keep
// the hub's order.
func encodeStreamEvent(ev cdc.Event, first bool) streamEvent {
	if ev.Resync {
		typ := "resync"
		if first {
			typ = "snapshot"
		}
		return streamEvent{
			Type:  typ,
			View:  ev.View,
			Seq:   ev.Seq,
			Count: ev.Snapshot.Len(),
			Rows:  wireRows(ev.Snapshot.Sorted()),
		}
	}
	return streamEvent{
		Type:   "delta",
		View:   ev.View,
		Seq:    ev.Seq,
		Insert: wireRows(ev.Inserts),
		Delete: wireRows(ev.Deletes),
	}
}

// subOptionsOf parses the stream's subscription options from the query.
func subOptionsOf(r *http.Request) (cdc.SubOptions, error) {
	var opts cdc.SubOptions
	q := r.URL.Query()
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return opts, fmt.Errorf("server: bad buffer %q", v)
		}
		opts.Buffer = n
	}
	switch p := q.Get("policy"); p {
	case "", "drop":
	case "block":
		opts.Policy = cdc.BlockWithDeadline
	default:
		return opts, fmt.Errorf("server: bad policy %q (want drop or block)", p)
	}
	if v := q.Get("deadline_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return opts, fmt.Errorf("server: bad deadline_ms %q", v)
		}
		opts.BlockDeadline = time.Duration(n) * time.Millisecond
	}
	return opts, nil
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.db.Decl(name) == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: unknown relation %q", name))
		return
	}
	opts, err := subOptionsOf(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("server: streaming unsupported"))
		return
	}
	if sess := s.sessionOf(r, r.URL.Query().Get("session")); sess != nil {
		sess.touch(false)
	}
	// Flush the pending batch first so the snapshot covers every
	// acknowledged transaction (same reason handleDDL flushes).
	if err := s.bt.Load().Flush(); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	sub, err := s.db.Subscribe(name, opts)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer sub.Close()
	s.streamsActive.Add(1)
	s.streamsTotal.Add(1)
	defer s.streamsActive.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// The stream dies with the client connection or at server shutdown
	// (DisconnectSubscribers) — http.Server.Shutdown alone would wait on
	// it forever.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.streamClose:
			cancel()
		case <-ctx.Done():
		}
	}()

	enc := json.NewEncoder(w)
	first := true
	for {
		hctx := ctx
		var hcancel context.CancelFunc
		if s.cfg.Heartbeat > 0 {
			hctx, hcancel = context.WithTimeout(ctx, s.cfg.Heartbeat)
		}
		ev, err := sub.Recv(hctx)
		if hcancel != nil {
			hcancel()
		}
		switch {
		case err == nil:
			if encErr := enc.Encode(encodeStreamEvent(ev, first)); encErr != nil {
				return
			}
			first = false
			flusher.Flush()
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// Idle: heartbeat with the hub's current seq and this
			// subscription's lag, so a client can detect it is behind
			// even when its own view is quiet.
			line := streamEvent{Type: "ping", Seq: s.db.CDCStats().Seq, Lag: sub.Stats().LagSeqs}
			if encErr := enc.Encode(line); encErr != nil {
				return
			}
			flusher.Flush()
		case errors.Is(err, cdc.ErrClosed), ctx.Err() != nil:
			return
		default:
			// Resync pull failed (engine error). Surface it on the stream
			// before ending it: the client must know its mirror is stale.
			_ = enc.Encode(streamEvent{Type: "error", View: name, Error: err.Error()})
			return
		}
	}
}
