package value

import (
	"testing"
)

func iterTestRelation(n int) *Relation {
	r := NewRelation(2)
	for i := 0; i < n; i++ {
		r.Add(Tuple{Int(int64(i)), Int(int64(i % 7))})
	}
	return r
}

// All must visit every tuple exactly once, and early exit must stop the walk.
func TestAllSeq(t *testing.T) {
	r := iterTestRelation(100)
	seen := NewRelation(2)
	for tu := range r.All() {
		if !seen.Add(tu) {
			t.Fatalf("tuple %v yielded twice", tu)
		}
	}
	if !seen.Equal(r) {
		t.Fatalf("All visited %d tuples, want %d", seen.Len(), r.Len())
	}
	count := 0
	for range r.All() {
		count++
		if count == 10 {
			break
		}
	}
	if count != 10 {
		t.Fatalf("early exit after 10, walked %d", count)
	}
}

// Shards must be disjoint with union equal to the relation, matching the
// EachShard partitioning exactly.
func TestShardSeqPartition(t *testing.T) {
	r := iterTestRelation(500)
	for _, n := range []int{1, 2, 3, 8} {
		union := NewRelation(2)
		for s := 0; s < n; s++ {
			fromEach := NewRelation(2)
			r.EachShard(n, s, func(tu Tuple) { fromEach.Add(tu) })
			fromSeq := NewRelation(2)
			for tu := range r.ShardSeq(n, s) {
				if !fromSeq.Add(tu) {
					t.Fatalf("n=%d s=%d: tuple %v yielded twice", n, s, tu)
				}
				if !union.Add(tu) {
					t.Fatalf("n=%d: shards overlap on %v", n, tu)
				}
			}
			if !fromSeq.Equal(fromEach) {
				t.Fatalf("n=%d s=%d: ShardSeq disagrees with EachShard", n, s)
			}
		}
		if !union.Equal(r) {
			t.Fatalf("n=%d: shard union has %d tuples, want %d", n, union.Len(), r.Len())
		}
	}
}

// The pull cursor must yield the same set as push iteration, tolerate an
// early Stop, and be idempotent on Stop.
func TestPullIterator(t *testing.T) {
	r := iterTestRelation(200)
	it := r.Iterator()
	seen := NewRelation(2)
	for {
		tu, ok := it.Next()
		if !ok {
			break
		}
		if !seen.Add(tu) {
			t.Fatalf("tuple %v pulled twice", tu)
		}
	}
	it.Stop() // after exhaustion: no-op
	if !seen.Equal(r) {
		t.Fatalf("Iterator pulled %d tuples, want %d", seen.Len(), r.Len())
	}

	it = r.Iterator()
	if _, ok := it.Next(); !ok {
		t.Fatal("fresh iterator empty on a non-empty relation")
	}
	it.Stop()
	it.Stop()
	if _, ok := it.Next(); ok {
		t.Fatal("Next after Stop must report exhaustion")
	}
}

// Two pull cursors interleaved (the merge shape pull iteration exists for)
// must jointly cover a sharded relation.
func TestShardIteratorInterleaved(t *testing.T) {
	r := iterTestRelation(300)
	a, b := r.ShardIterator(2, 0), r.ShardIterator(2, 1)
	defer a.Stop()
	defer b.Stop()
	seen := NewRelation(2)
	for {
		ta, oka := a.Next()
		tb, okb := b.Next()
		if oka {
			seen.Add(ta)
		}
		if okb {
			seen.Add(tb)
		}
		if !oka && !okb {
			break
		}
	}
	if !seen.Equal(r) {
		t.Fatalf("interleaved shard pull covered %d tuples, want %d", seen.Len(), r.Len())
	}
}

// An iterator created before a COW divergence keeps observing the storage
// it started on — the snapshot guarantee extended to iteration.
func TestIteratorObservesSnapshotStorage(t *testing.T) {
	r := iterTestRelation(50)
	snap := r.Snapshot()
	seq := snap.All()
	r.Add(Tuple{Int(10_000), Int(0)}) // diverges r from the shared storage
	n := 0
	for range seq {
		n++
	}
	if n != 50 {
		t.Fatalf("snapshot sequence saw %d tuples, want 50", n)
	}
	if r.Len() != 51 {
		t.Fatalf("writer relation has %d tuples, want 51", r.Len())
	}
}
