package value

import (
	"sort"
	"strings"
)

// Relation is a finite set of tuples of a fixed arity, with set semantics.
// It is the runtime representation of both EDB and IDB relations.
//
// Membership is keyed by Tuple.Key, so Int/Float duplicates collapse the
// same way Equal treats them.
type Relation struct {
	arity  int
	tuples map[string]Tuple
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, tuples: make(map[string]Tuple)}
}

// RelationOf builds a relation of the given arity from tuples.
func RelationOf(arity int, tuples ...Tuple) *Relation {
	r := NewRelation(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity reports the arity of the relation.
func (r *Relation) Arity() int { return r.arity }

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Add inserts t; it reports whether the relation changed. It panics on an
// arity mismatch, which always indicates a bug in the caller.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic("value: relation arity mismatch on Add")
	}
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	r.tuples[k] = t.Clone()
	return true
}

// Remove deletes t; it reports whether the relation changed.
func (r *Relation) Remove(t Tuple) bool {
	k := t.Key()
	if _, ok := r.tuples[k]; !ok {
		return false
	}
	delete(r.tuples, k)
	return true
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.tuples[t.Key()]
	return ok
}

// Each calls fn for every tuple; fn must not mutate the relation.
func (r *Relation) Each(fn func(Tuple)) {
	for _, t := range r.tuples {
		fn(t)
	}
}

// EachUntil calls fn for every tuple until fn returns false; it reports
// whether the iteration ran to completion.
func (r *Relation) EachUntil(fn func(Tuple) bool) bool {
	for _, t := range r.tuples {
		if !fn(t) {
			return false
		}
	}
	return true
}

// Tuples returns the tuples in an unspecified order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	return out
}

// Sorted returns the tuples in lexicographic order, for deterministic output.
func (r *Relation) Sorted() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.arity)
	for k, t := range r.tuples {
		c.tuples[k] = t.Clone()
	}
	return c
}

// Equal reports whether two relations hold exactly the same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	for k := range r.tuples {
		if _, ok := s.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// UnionWith inserts every tuple of s into r and reports whether r changed.
func (r *Relation) UnionWith(s *Relation) bool {
	changed := false
	for _, t := range s.tuples {
		if r.Add(t) {
			changed = true
		}
	}
	return changed
}

// SubtractAll removes every tuple of s from r and reports whether r changed.
func (r *Relation) SubtractAll(s *Relation) bool {
	changed := false
	for k := range s.tuples {
		if _, ok := r.tuples[k]; ok {
			delete(r.tuples, k)
			changed = true
		}
	}
	return changed
}

// Intersect returns the set of tuples present in both r and s.
func (r *Relation) Intersect(s *Relation) *Relation {
	out := NewRelation(r.arity)
	small, big := r, s
	if s.Len() < r.Len() {
		small, big = s, r
	}
	for k, t := range small.tuples {
		if _, ok := big.tuples[k]; ok {
			out.tuples[k] = t.Clone()
		}
	}
	return out
}

// Minus returns r \ s as a new relation.
func (r *Relation) Minus(s *Relation) *Relation {
	out := NewRelation(r.arity)
	for k, t := range r.tuples {
		if _, ok := s.tuples[k]; !ok {
			out.tuples[k] = t.Clone()
		}
	}
	return out
}

// String renders the relation as a sorted set of tuples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
