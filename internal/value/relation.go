package value

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Relation is a finite set of tuples of a fixed arity, with set semantics.
// It is the runtime representation of both EDB and IDB relations.
//
// Membership is hash-native: tuples bucket by Tuple.Hash and collisions
// resolve with Tuple.Equal, so Int/Float duplicates collapse the same way
// Equal treats them, without materializing a string key per tuple.
//
// Tuples are stored by reference, not defensively copied: a tuple handed to
// Add (directly or via RelationOf/UnionWith) is owned by the relation from
// then on, and tuples observed through Each/Tuples/Sorted are the stored
// ones. Callers must treat tuples as immutable once they reach a relation;
// every producer in this codebase allocates a fresh tuple per derived row
// (see compiledRule.exec, applyAssignments).
type Relation struct {
	arity   int
	size    int
	buckets map[uint64][]Tuple
	// shared marks the bucket storage as referenced by at least one
	// Snapshot: the next mutation copies the buckets first (copy-on-write),
	// so snapshot holders can keep reading the old storage. It is atomic
	// because concurrent readers may take snapshots of one relation at the
	// same time (the engine serves Get under a read lock); mutators run
	// exclusively (write lock) and see the flag via lock ordering.
	shared atomic.Bool
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, buckets: make(map[uint64][]Tuple)}
}

// RelationOf builds a relation of the given arity from tuples.
func RelationOf(arity int, tuples ...Tuple) *Relation {
	r := NewRelation(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity reports the arity of the relation.
func (r *Relation) Arity() int { return r.arity }

// Len reports the number of tuples.
func (r *Relation) Len() int { return r.size }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.size == 0 }

// addHashed inserts t under its precomputed hash, reporting whether the
// relation changed.
func (r *Relation) addHashed(h uint64, t Tuple) bool {
	bucket := r.buckets[h]
	for _, u := range bucket {
		if u.Equal(t) {
			return false
		}
	}
	r.buckets[h] = append(bucket, t)
	r.size++
	return true
}

// containsHashed reports membership of t under its precomputed hash.
func (r *Relation) containsHashed(h uint64, t Tuple) bool {
	for _, u := range r.buckets[h] {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Snapshot returns an immutable view of the relation in O(1): the snapshot
// shares the bucket storage, and the next mutation of either side copies the
// storage first (copy-on-write), so a snapshot keeps observing exactly the
// state at the time it was taken. Taking a snapshot never copies tuples;
// the deferred copy is paid at most once per snapshot by the first writer.
// Concurrent Snapshot calls on one relation are safe; mutations must still
// be externally serialized against each other, as for every other method.
//
// Callers must not mutate a snapshot (mutating methods would quietly COW
// and diverge); treat it as read-only.
func (r *Relation) Snapshot() *Relation {
	r.shared.Store(true)
	s := &Relation{arity: r.arity, size: r.size, buckets: r.buckets}
	s.shared.Store(true)
	return s
}

// ensureOwned gives r private bucket storage before a mutation when the
// current storage is shared with snapshots.
func (r *Relation) ensureOwned() {
	if !r.shared.Load() {
		return
	}
	nb := make(map[uint64][]Tuple, len(r.buckets))
	for h, bucket := range r.buckets {
		nb[h] = append([]Tuple(nil), bucket...)
	}
	r.buckets = nb
	r.shared.Store(false)
}

// Add inserts t; it reports whether the relation changed. The relation
// takes ownership of t (no defensive copy); t must not be mutated
// afterwards. Add panics on an arity mismatch, which always indicates a
// bug in the caller.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic("value: relation arity mismatch on Add")
	}
	r.ensureOwned()
	return r.addHashed(t.Hash(), t)
}

// Remove deletes t; it reports whether the relation changed.
func (r *Relation) Remove(t Tuple) bool {
	r.ensureOwned()
	h := t.Hash()
	bucket := r.buckets[h]
	for i, u := range bucket {
		if u.Equal(t) {
			if len(bucket) == 1 {
				delete(r.buckets, h)
			} else {
				bucket[i] = bucket[len(bucket)-1]
				r.buckets[h] = bucket[:len(bucket)-1]
			}
			r.size--
			return true
		}
	}
	return false
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	return r.containsHashed(t.Hash(), t)
}

// Each calls fn for every tuple; fn must not mutate the relation.
func (r *Relation) Each(fn func(Tuple)) {
	for _, bucket := range r.buckets {
		for _, t := range bucket {
			fn(t)
		}
	}
}

// EachUntil calls fn for every tuple until fn returns false; it reports
// whether the iteration ran to completion.
func (r *Relation) EachUntil(fn func(Tuple) bool) bool {
	for _, bucket := range r.buckets {
		for _, t := range bucket {
			if !fn(t) {
				return false
			}
		}
	}
	return true
}

// EachShard calls fn for every tuple of shard s out of n. Shards partition
// the relation by hash bucket (a bucket belongs to shard h mod n), reusing
// the existing hash layout: no tuples are moved or copied, and the n shards
// of a relation are disjoint with union equal to the whole relation. Tuples
// that Equal each other share a hash, hence a bucket, hence a shard, so
// set-semantic deduplication is shard-local. Concurrent EachShard calls for
// distinct shards are safe as long as no goroutine mutates the relation.
func (r *Relation) EachShard(n, s int, fn func(Tuple)) {
	if n <= 1 {
		r.Each(fn)
		return
	}
	for h, bucket := range r.buckets {
		if h%uint64(n) != uint64(s) {
			continue
		}
		for _, t := range bucket {
			fn(t)
		}
	}
}

// EachShardUntil is EachShard with early termination: it stops when fn
// returns false and reports whether the iteration ran to completion.
func (r *Relation) EachShardUntil(n, s int, fn func(Tuple) bool) bool {
	if n <= 1 {
		return r.EachUntil(fn)
	}
	for h, bucket := range r.buckets {
		if h%uint64(n) != uint64(s) {
			continue
		}
		for _, t := range bucket {
			if !fn(t) {
				return false
			}
		}
	}
	return true
}

// Tuples returns the tuples in an unspecified order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.size)
	for _, bucket := range r.buckets {
		out = append(out, bucket...)
	}
	return out
}

// Sorted returns the tuples in lexicographic order, for deterministic output.
func (r *Relation) Sorted() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent copy of r. The tuples themselves are shared
// (they are immutable by convention); only the set structure is copied.
func (r *Relation) Clone() *Relation {
	c := &Relation{arity: r.arity, size: r.size, buckets: make(map[uint64][]Tuple, len(r.buckets))}
	for h, bucket := range r.buckets {
		c.buckets[h] = append([]Tuple(nil), bucket...)
	}
	return c
}

// Equal reports whether two relations hold exactly the same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.size != s.size {
		return false
	}
	for h, bucket := range r.buckets {
		for _, t := range bucket {
			if !s.containsHashed(h, t) {
				return false
			}
		}
	}
	return true
}

// UnionWith inserts every tuple of s into r and reports whether r changed.
// It panics on an arity mismatch, like Add.
func (r *Relation) UnionWith(s *Relation) bool {
	if r.arity != s.arity {
		panic("value: relation arity mismatch on UnionWith")
	}
	r.ensureOwned()
	changed := false
	for h, bucket := range s.buckets {
		for _, t := range bucket {
			if r.addHashed(h, t) {
				changed = true
			}
		}
	}
	return changed
}

// SubtractAll removes every tuple of s from r and reports whether r changed.
func (r *Relation) SubtractAll(s *Relation) bool {
	r.ensureOwned()
	changed := false
	for _, bucket := range s.buckets {
		for _, t := range bucket {
			if r.Remove(t) {
				changed = true
			}
		}
	}
	return changed
}

// Intersect returns the set of tuples present in both r and s.
func (r *Relation) Intersect(s *Relation) *Relation {
	out := NewRelation(r.arity)
	small, big := r, s
	if s.size < r.size {
		small, big = s, r
	}
	for h, bucket := range small.buckets {
		for _, t := range bucket {
			if big.containsHashed(h, t) {
				out.addHashed(h, t)
			}
		}
	}
	return out
}

// Minus returns r \ s as a new relation.
func (r *Relation) Minus(s *Relation) *Relation {
	out := NewRelation(r.arity)
	for h, bucket := range r.buckets {
		for _, t := range bucket {
			if !s.containsHashed(h, t) {
				out.addHashed(h, t)
			}
		}
	}
	return out
}

// String renders the relation as a sorted set of tuples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
