package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator so Value can be drawn directly in
// property tests: a random scalar of a random kind.
func (Value) Generate(r *rand.Rand, size int) reflect.Value {
	var v Value
	switch r.Intn(4) {
	case 0:
		v = Int(int64(r.Intn(2*size+1) - size))
	case 1:
		v = Float(float64(r.Intn(2*size+1)-size) / 2)
	case 2:
		b := make([]byte, r.Intn(4))
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		v = Str(string(b))
	default:
		v = Bool(r.Intn(2) == 0)
	}
	return reflect.ValueOf(v)
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c Value) bool {
		x, y, z := a, b, c
		// Sort the three by Compare and verify the chain is consistent.
		if x.Compare(y) > 0 {
			x, y = y, x
		}
		if y.Compare(z) > 0 {
			y, z = z, y
		}
		if x.Compare(y) > 0 {
			x, y = y, x
		}
		return x.Compare(y) <= 0 && y.Compare(z) <= 0 && x.Compare(z) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualIffCompareZero(t *testing.T) {
	f := func(a, b Value) bool {
		// Equal and Compare agree except Compare's cross-kind ordering for
		// non-numeric kinds (where Equal is false and Compare nonzero) —
		// i.e. Equal(a,b) implies Compare == 0, and for same-kind values
		// the reverse holds too.
		if a.Equal(b) && a.Compare(b) != 0 {
			return false
		}
		if a.Kind() == b.Kind() && a.Compare(b) == 0 && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTupleKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 Value) bool {
		t1 := Tuple{a1, a2}
		t2 := Tuple{b1, b2}
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTripsThroughSQL(t *testing.T) {
	// String() and SQL() agree for everything except booleans.
	f := func(v Value) bool {
		if v.Kind() == KindBool {
			return (v.SQL() == "TRUE") == v.AsBool()
		}
		return v.SQL() == v.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Relation delta application: (R \ D) ∪ I is exactly membership-wise what
// ApplyDeltas computes, and inserting then removing a fresh tuple is the
// identity.
func TestQuickRelationDeltaApplication(t *testing.T) {
	f := func(rs, ds, is []Value) bool {
		r := NewRelation(1)
		for _, v := range rs {
			r.Add(Tuple{v})
		}
		d := NewRelation(1)
		for _, v := range ds {
			d.Add(Tuple{v})
		}
		ins := NewRelation(1)
		for _, v := range is {
			ins.Add(Tuple{v})
		}
		applied := r.Clone()
		applied.SubtractAll(d)
		applied.UnionWith(ins)
		// Membership law.
		for _, v := range append(append(append([]Value{}, rs...), ds...), is...) {
			tu := Tuple{v}
			want := ins.Contains(tu) || (r.Contains(tu) && !d.Contains(tu))
			if applied.Contains(tu) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
