package value

import "iter"

// Lazy tuple iteration over a relation's hash-bucket layout. The streaming
// evaluator composes rule pipelines from these: a pipeline's root walks the
// buckets of one relation (or one hash shard of them) without copying a
// tuple or materializing an intermediate slice, and downstream operators
// (probes, filters, projections) consume tuples one at a time. Both forms
// are exposed:
//
//   - All/ShardSeq are push-style iter.Seq sequences (zero allocation,
//     compose with range-over-func) — the form the hot evaluation loops use;
//   - Iterator/ShardIterator are pull-style cursors built on iter.Pull for
//     consumers that must interleave several streams or hold their place
//     across calls (e.g. merging two relations without a callback tower).
//
// Every iterator observes the bucket storage at the time it is created.
// Like Each, iteration must not run concurrently with mutation of the
// relation; concurrent iteration by many readers is safe. On a relation
// whose storage is shared with snapshots (copy-on-write), an in-progress
// iterator keeps walking the storage it started on even if a writer
// diverges the relation mid-iteration — the same guarantee snapshots have.

// All returns a push-style sequence over every tuple, in unspecified order.
func (r *Relation) All() iter.Seq[Tuple] {
	buckets := r.buckets
	return func(yield func(Tuple) bool) {
		for _, bucket := range buckets {
			for _, t := range bucket {
				if !yield(t) {
					return
				}
			}
		}
	}
}

// ShardSeq returns a push-style sequence over the tuples of shard s out of
// n, partitioned by hash bucket exactly as EachShard partitions them: the n
// shards are disjoint, their union is the relation, and tuples that Equal
// each other land in the same shard.
func (r *Relation) ShardSeq(n, s int) iter.Seq[Tuple] {
	if n <= 1 {
		return r.All()
	}
	buckets := r.buckets
	return func(yield func(Tuple) bool) {
		for h, bucket := range buckets {
			if h%uint64(n) != uint64(s) {
				continue
			}
			for _, t := range bucket {
				if !yield(t) {
					return
				}
			}
		}
	}
}

// Iterator is a pull-style cursor over a relation's tuples. Next returns
// the tuples one at a time; Stop releases the cursor early (it is also
// safe, and a no-op, after Next reported exhaustion). The tuples returned
// are the stored ones — never copies — and must be treated as immutable.
type Iterator struct {
	next func() (Tuple, bool)
	stop func()
}

// Next returns the next tuple, or ok=false when the iteration is done.
func (it *Iterator) Next() (Tuple, bool) { return it.next() }

// Stop ends the iteration and releases its resources. It is idempotent.
func (it *Iterator) Stop() { it.stop() }

// Iterator returns a pull-style cursor over every tuple of the relation.
// The caller must either drain it or call Stop.
func (r *Relation) Iterator() *Iterator {
	next, stop := iter.Pull(r.All())
	return &Iterator{next: next, stop: stop}
}

// ShardIterator returns a pull-style cursor over the tuples of shard s out
// of n (the EachShard partitioning). The caller must either drain it or
// call Stop.
func (r *Relation) ShardIterator(n, s int) *Iterator {
	next, stop := iter.Pull(r.ShardSeq(n, s))
	return &Iterator{next: next, stop: stop}
}
