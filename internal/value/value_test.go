package value

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) round-trip failed: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) round-trip failed: %v", v)
	}
	if v := Str("hi"); v.Kind() != KindString || v.AsString() != "hi" {
		t.Errorf("Str round-trip failed: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool round-trip failed: %v", v)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat should widen ints")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), true},
		{Float(1.5), Int(1), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Str("1"), Int(1), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Null(), Null(), true},
		{Null(), Int(0), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric on %v, %v", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Float(1.5), -1},
		{Float(3), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("1962-01-01"), Str("1962-12-31"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !Int(1).Less(Int(2)) || Int(2).Less(Int(1)) {
		t.Error("Less misbehaves")
	}
}

func TestValueCompareTotalOrderAcrossKinds(t *testing.T) {
	vals := []Value{Null(), Int(3), Float(1.5), Str("x"), Bool(true)}
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("Compare not antisymmetric on %v, %v", a, b)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("ab"), "'ab'"},
		{Str("it's"), "'it''s'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Null(), "null"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if Bool(true).SQL() != "TRUE" || Bool(false).SQL() != "FALSE" {
		t.Error("SQL boolean literals wrong")
	}
	if Str("a").SQL() != "'a'" {
		t.Error("SQL string literal wrong")
	}
}

func TestTupleKeyAgreesWithEqual(t *testing.T) {
	f := func(a1, b1 int64, s1, s2 string) bool {
		t1 := Tuple{Int(a1), Str(s1)}
		t2 := Tuple{Int(b1), Str(s2)}
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Numeric widening: Int(1) and Float(1) must collide.
	if (Tuple{Int(1)}).Key() != (Tuple{Float(1)}).Key() {
		t.Error("Int(1) and Float(1) should share a key")
	}
	// Injection check: string boundaries must not be confusable.
	if (Tuple{Str("ab"), Str("c")}).Key() == (Tuple{Str("a"), Str("bc")}).Key() {
		t.Error("tuple key is not injective across string boundaries")
	}
}

func TestTupleCompareAndClone(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("y")}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("tuple compare wrong")
	}
	short := Tuple{Int(1)}
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("shorter tuples must order first")
	}
	c := a.Clone()
	c[0] = Int(9)
	if a[0].AsInt() != 1 {
		t.Error("Clone must not share storage")
	}
	if a.String() != "(1, 'x')" {
		t.Errorf("tuple String = %q", a.String())
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if r.Arity() != 2 || !r.Empty() {
		t.Fatal("fresh relation wrong")
	}
	t1 := Tuple{Int(1), Str("a")}
	if !r.Add(t1) || r.Add(t1) {
		t.Error("Add change-reporting wrong")
	}
	if r.Len() != 1 || !r.Contains(t1) {
		t.Error("Contains/Len wrong")
	}
	if !r.Remove(t1) || r.Remove(t1) {
		t.Error("Remove change-reporting wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	r.Add(Tuple{Int(1)})
}

func TestRelationSetOps(t *testing.T) {
	mk := func(vals ...int64) *Relation {
		r := NewRelation(1)
		for _, v := range vals {
			r.Add(Tuple{Int(v)})
		}
		return r
	}
	a := mk(1, 2, 3)
	b := mk(2, 3, 4)

	if got := a.Intersect(b); got.Len() != 2 || !got.Contains(Tuple{Int(2)}) || !got.Contains(Tuple{Int(3)}) {
		t.Errorf("Intersect wrong: %v", got)
	}
	if got := a.Minus(b); got.Len() != 1 || !got.Contains(Tuple{Int(1)}) {
		t.Errorf("Minus wrong: %v", got)
	}
	c := a.Clone()
	if !c.UnionWith(b) || c.Len() != 4 {
		t.Errorf("UnionWith wrong: %v", c)
	}
	if c.UnionWith(b) {
		t.Error("idempotent union should report no change")
	}
	d := a.Clone()
	if !d.SubtractAll(b) || d.Len() != 1 {
		t.Errorf("SubtractAll wrong: %v", d)
	}
	if d.SubtractAll(b) {
		t.Error("idempotent subtract should report no change")
	}
	if !a.Equal(mk(3, 2, 1)) || a.Equal(b) || a.Equal(mk(1, 2)) {
		t.Error("Equal wrong")
	}
}

func TestRelationSortedDeterministic(t *testing.T) {
	r := NewRelation(1)
	vals := rand.New(rand.NewSource(7)).Perm(50)
	for _, v := range vals {
		r.Add(Tuple{Int(int64(v))})
	}
	s := r.Sorted()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Compare(s[j]) < 0 }) {
		t.Error("Sorted not sorted")
	}
	if r.String() == "" || r.String()[0] != '{' {
		t.Error("String rendering wrong")
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := RelationOf(1, Tuple{Int(1)})
	c := r.Clone()
	c.Add(Tuple{Int(2)})
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone must be independent")
	}
}

// Property: for random relations A, B over a small domain,
// (A \ B) ∪ (A ∩ B) == A.
func TestRelationPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a, b := NewRelation(1), NewRelation(1)
		for i := 0; i < 10; i++ {
			if rng.Intn(2) == 0 {
				a.Add(Tuple{Int(int64(rng.Intn(6)))})
			}
			if rng.Intn(2) == 0 {
				b.Add(Tuple{Int(int64(rng.Intn(6)))})
			}
		}
		got := a.Minus(b)
		got.UnionWith(a.Intersect(b))
		if !got.Equal(a) {
			t.Fatalf("partition property violated: A=%v B=%v got=%v", a, b, got)
		}
	}
}
