package value

import (
	"math"
	"testing"
	"testing/quick"
)

// Hash must agree with Equal: Equal values always share a hash, and over
// the tiny domain the quick generator draws from, distinct values sharing a
// 64-bit hash would indicate a degenerate hash (a genuine collision there
// has probability ~2^-64), so the property is checked in both directions.
func TestQuickValueHashAgreesWithEqual(t *testing.T) {
	f := func(a, b Value) bool {
		if a.Equal(b) {
			return a.Hash() == b.Hash()
		}
		return a.Hash() != b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTupleHashAgreesWithEqual(t *testing.T) {
	f := func(a1, a2, b1, b2 Value) bool {
		t1 := Tuple{a1, a2}
		t2 := Tuple{b1, b2}
		return (t1.Hash() == t2.Hash()) == t1.Equal(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashNumericWidening(t *testing.T) {
	if Int(1).Hash() != Float(1).Hash() {
		t.Error("Int(1) and Float(1) must share a hash (Equal treats them as equal)")
	}
	if (Tuple{Int(7), Str("x")}).Hash() != (Tuple{Float(7), Str("x")}).Hash() {
		t.Error("tuple hash must widen numerics like Tuple.Equal")
	}
	if Float(0).Hash() != Float(math.Copysign(0, -1)).Hash() {
		t.Error("-0.0 equals +0.0 and must share its hash")
	}
	if Int(0).Hash() != Float(math.Copysign(0, -1)).Hash() {
		t.Error("Int(0) and Float(-0.0) are Equal and must share a hash")
	}
	// Large integers lose precision when widened; neighbours may share a
	// bucket, but Equal still separates them — membership must stay exact.
	big := int64(1) << 53
	r := NewRelation(1)
	r.Add(Tuple{Int(big)})
	r.Add(Tuple{Int(big + 1)})
	if r.Len() != 2 || !r.Contains(Tuple{Int(big)}) || !r.Contains(Tuple{Int(big + 1)}) {
		t.Error("widening-collided integers must remain distinct set members")
	}
}

func TestHashCrossKindSeparation(t *testing.T) {
	distinct := []Value{Null(), Str(""), Bool(false), Bool(true), Int(0), Int(1), Str("0"), Str("1"), Str("null")}
	for i, a := range distinct {
		for j, b := range distinct {
			if i == j {
				continue
			}
			if !a.Equal(b) && a.Hash() == b.Hash() {
				t.Errorf("distinct values %v and %v collide", a, b)
			}
		}
	}
}

// Element boundaries must not be confusable: ("ab","c") vs ("a","bc") hash
// each element independently before mixing, so they land in different
// buckets even though their concatenated bytes agree.
func TestTupleHashElementBoundaries(t *testing.T) {
	if (Tuple{Str("ab"), Str("c")}).Hash() == (Tuple{Str("a"), Str("bc")}).Hash() {
		t.Error("tuple hash is not boundary-safe across string elements")
	}
	if (Tuple{Int(1), Int(23)}).Hash() == (Tuple{Int(12), Int(3)}).Hash() {
		t.Error("tuple hash is not boundary-safe across numeric elements")
	}
}

// White-box test of the collision-resolution path: force several distinct
// tuples into one bucket and check that set semantics (dedup, membership,
// size, union/equal) still hold tuple-wise, not hash-wise.
func TestRelationCollisionBuckets(t *testing.T) {
	const h = uint64(0xdeadbeef)
	a, b, c := Tuple{Int(1)}, Tuple{Int(2)}, Tuple{Int(3)}

	r := NewRelation(1)
	if !r.addHashed(h, a) || !r.addHashed(h, b) || !r.addHashed(h, c) {
		t.Fatal("adds into a shared bucket must succeed")
	}
	if r.addHashed(h, a) {
		t.Error("duplicate in a collision bucket must be rejected by Equal, not hash")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	for _, tu := range []Tuple{a, b, c} {
		if !r.containsHashed(h, tu) {
			t.Errorf("collision bucket lost %v", tu)
		}
	}

	// Equality between relations must compare tuples inside buckets.
	s := NewRelation(1)
	s.addHashed(h, c)
	s.addHashed(h, a)
	s.addHashed(h, b)
	if !r.Equal(s) {
		t.Error("relations with identical tuples in one collision bucket must be Equal")
	}
	s2 := NewRelation(1)
	s2.addHashed(h, a)
	s2.addHashed(h, b)
	s2.addHashed(h, Tuple{Int(4)})
	if r.Equal(s2) {
		t.Error("same bucket shape with different tuples must not be Equal")
	}

	// Clone must copy bucket slices: mutating the clone's membership must
	// not leak into the original.
	cl := r.Clone()
	if !cl.Equal(r) {
		t.Error("clone must equal original")
	}
	cl.addHashed(h, Tuple{Int(9)})
	if r.Len() != 3 || cl.Len() != 4 {
		t.Error("clone shares bucket storage with original")
	}
}

func TestRelationRemoveFromCollisionBucket(t *testing.T) {
	// Remove hashes the tuple itself, so build the collision with real
	// hashes here: all tuples added normally, then remove one and check the
	// others survive regardless of bucket layout.
	r := NewRelation(2)
	tuples := []Tuple{
		{Int(1), Str("a")},
		{Int(1), Str("b")},
		{Float(1), Str("c")},
		{Int(2), Str("a")},
	}
	for _, tu := range tuples {
		r.Add(tu)
	}
	if !r.Remove(Tuple{Float(1), Str("b")}) { // Int(1) ≡ Float(1)
		t.Fatal("Remove must find the tuple through numeric widening")
	}
	if r.Contains(Tuple{Int(1), Str("b")}) {
		t.Error("removed tuple still present")
	}
	for _, tu := range []Tuple{{Int(1), Str("a")}, {Int(1), Str("c")}, {Int(2), Str("a")}} {
		if !r.Contains(tu) {
			t.Errorf("Remove dropped unrelated tuple %v", tu)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

// BenchmarkRelationAdd measures set insertion without the old per-tuple
// string key and defensive clone.
func BenchmarkRelationAdd(b *testing.B) {
	tuples := make([]Tuple, 4096)
	for i := range tuples {
		tuples[i] = Tuple{Int(int64(i)), Str("payload"), Int(int64(i % 97))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRelation(3)
		for _, tu := range tuples {
			r.Add(tu)
		}
	}
}

func BenchmarkRelationContains(b *testing.B) {
	r := NewRelation(2)
	for i := 0; i < 100000; i++ {
		r.Add(Tuple{Int(int64(i)), Int(int64(i % 100))})
	}
	probe := Tuple{Int(51234), Int(34)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Contains(probe) {
			b.Fatal("probe must hit")
		}
	}
}

func BenchmarkTupleHash(b *testing.B) {
	t := Tuple{Int(123456), Str("some-name"), Float(3.25), Bool(true)}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= t.Hash()
	}
	_ = sink
}
