package value

import (
	"math/rand"
	"testing"
)

func shardTestRelation(n int, rng *rand.Rand) *Relation {
	r := NewRelation(2)
	for i := 0; i < n; i++ {
		r.Add(Tuple{Int(int64(rng.Intn(n))), Str("x")})
	}
	return r
}

// The shards of a relation must partition it: disjoint, covering, and with
// equal tuples (same hash) always in the same shard.
func TestEachShardPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shards := range []int{1, 2, 3, 7, 16} {
		r := shardTestRelation(500, rng)
		seen := NewRelation(2)
		total := 0
		for s := 0; s < shards; s++ {
			r.EachShard(shards, s, func(tu Tuple) {
				total++
				if !seen.Add(tu) {
					t.Fatalf("shards=%d: tuple %v appeared in two shards (or twice)", shards, tu)
				}
			})
		}
		if total != r.Len() {
			t.Fatalf("shards=%d: visited %d tuples, relation has %d", shards, total, r.Len())
		}
		if !seen.Equal(r) {
			t.Fatalf("shards=%d: union of shards differs from relation", shards)
		}
	}
}

// A tuple's shard assignment is a pure function of its hash: re-adding the
// same tuples into a fresh relation lands each in the same shard.
func TestEachShardStableAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := shardTestRelation(300, rng)
	const shards = 5
	assign := func(rel *Relation) map[string]int {
		out := make(map[string]int)
		for s := 0; s < shards; s++ {
			rel.EachShard(shards, s, func(tu Tuple) { out[tu.Key()] = s })
		}
		return out
	}
	a := assign(r)
	b := assign(r.Clone())
	for k, s := range a {
		if b[k] != s {
			t.Fatalf("tuple %s moved shards: %d vs %d", k, s, b[k])
		}
	}
}

func TestEachShardUntilStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := shardTestRelation(200, rng)
	count := 0
	done := r.EachShardUntil(1, 0, func(Tuple) bool {
		count++
		return count < 3
	})
	if done || count != 3 {
		t.Fatalf("early stop failed: done=%v count=%d", done, count)
	}
	// Multi-shard early stop only terminates the probed shard.
	count = 0
	r.EachShardUntil(4, 2, func(Tuple) bool {
		count++
		return false
	})
	if count > 1 {
		t.Fatalf("shard iteration continued after stop: %d", count)
	}
}
