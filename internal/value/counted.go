package value

import (
	"fmt"
	"sort"
	"strings"
)

// CountedRelation is a relation whose tuples carry a support count — the
// number of derivations currently producing the tuple. It is the state a
// counting-based incremental view maintenance pass keeps per IDB relation:
// a tuple is logically present while its count is positive, appears when the
// count crosses 0 → positive, and disappears when it returns to 0.
//
// The layout mirrors Relation: tuples bucket by the 64-bit Tuple.Hash and
// collisions resolve with Tuple.Equal, so the probe of Adjust on a warm
// tuple allocates nothing (the alloc guard in alloc_test.go pins this).
// Like Relation, tuples are stored by reference and must be treated as
// immutable once handed to Adjust.
type CountedRelation struct {
	arity   int
	size    int // tuples with positive count
	buckets map[uint64][]countedTuple
}

type countedTuple struct {
	t Tuple
	n int
}

// NewCounted returns an empty counted relation of the given arity.
func NewCounted(arity int) *CountedRelation {
	return &CountedRelation{arity: arity, buckets: make(map[uint64][]countedTuple)}
}

// Arity reports the arity of the relation.
func (c *CountedRelation) Arity() int { return c.arity }

// Len reports the number of tuples with positive support.
func (c *CountedRelation) Len() int { return c.size }

// Count returns the support count of t (0 if absent).
func (c *CountedRelation) Count(t Tuple) int {
	h := t.Hash()
	for _, ct := range c.buckets[h] {
		if ct.t.Equal(t) {
			return ct.n
		}
	}
	return 0
}

// Adjust adds d to the support count of t and reports the transition:
// appeared is true when the count crossed from ≤0 to positive, vanished when
// it crossed from positive to ≤0. A zero-count entry is removed. Counts never
// go negative under correct delta propagation; Adjust tolerates it (the
// tuple simply stays logically absent) so that a propagation bug surfaces as
// a differential-test failure rather than a panic deep in the engine.
func (c *CountedRelation) Adjust(t Tuple, d int) (appeared, vanished bool) {
	if len(t) != c.arity {
		panic("value: counted relation arity mismatch on Adjust")
	}
	if d == 0 {
		return false, false
	}
	h := t.Hash()
	bucket := c.buckets[h]
	for i := range bucket {
		ct := &bucket[i]
		if !ct.t.Equal(t) {
			continue
		}
		old := ct.n
		ct.n += d
		if ct.n == 0 {
			if len(bucket) == 1 {
				delete(c.buckets, h)
			} else {
				bucket[i] = bucket[len(bucket)-1]
				c.buckets[h] = bucket[:len(bucket)-1]
			}
		}
		appeared = old <= 0 && old+d > 0
		vanished = old > 0 && old+d <= 0
		if appeared {
			c.size++
		}
		if vanished {
			c.size--
		}
		return appeared, vanished
	}
	c.buckets[h] = append(bucket, countedTuple{t: t, n: d})
	if d > 0 {
		c.size++
		return true, false
	}
	return false, false
}

// Each calls fn for every tuple with positive support, with its count; fn
// must not mutate the relation.
func (c *CountedRelation) Each(fn func(Tuple, int)) {
	for _, bucket := range c.buckets {
		for _, ct := range bucket {
			if ct.n > 0 {
				fn(ct.t, ct.n)
			}
		}
	}
}

// Relation materializes the positive-support tuples as a plain Relation.
func (c *CountedRelation) Relation() *Relation {
	out := NewRelation(c.arity)
	c.Each(func(t Tuple, _ int) { out.Add(t) })
	return out
}

// String renders the counted relation deterministically, for debugging.
func (c *CountedRelation) String() string {
	type entry struct {
		t Tuple
		n int
	}
	var es []entry
	c.Each(func(t Tuple, n int) { es = append(es, entry{t, n}) })
	sort.Slice(es, func(i, j int) bool { return es[i].t.Compare(es[j].t) < 0 })
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s×%d", e.t, e.n)
	}
	b.WriteByte('}')
	return b.String()
}
