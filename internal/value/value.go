// Package value provides the typed constants and tuples that flow through
// every layer of the system: the Datalog evaluator, the relational engine,
// the finite-model satisfiability oracle and the benchmark workloads.
//
// A Value is a small immutable scalar. Values are comparable in the Go sense
// (usable as map keys), which the evaluator exploits for hash joins, and they
// carry a total order so the built-in comparison predicates (<, >, <=, >=)
// of the Datalog dialect are well defined. Dates are represented as strings
// in ISO form (YYYY-MM-DD), whose lexicographic order coincides with
// chronological order, exactly as the paper's case study relies on
// (e.g. B < '1962-01-01').
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the runtime type of a Value.
type Kind uint8

// The kinds of scalar values supported by the engine.
const (
	KindNull Kind = iota // absence of a value (used only transiently)
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable scalar constant. The zero Value is the null value.
// Value is comparable and therefore usable as a map key.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it panics if v is not an int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64; it panics if v is
// neither an int nor a float.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
}

// AsString returns the string payload; it panics if v is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload; it panics if v is not a bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.b
}

// numeric reports whether v is an int or a float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Ints and floats compare
// numerically across kinds (1 == 1.0); all other cross-kind comparisons are
// false.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		return v == w
	}
	if v.numeric() && w.numeric() {
		return v.AsFloat() == w.AsFloat()
	}
	return false
}

// Compare returns -1, 0 or +1 ordering v before, equal to, or after w.
// The order is total: values of different non-numeric kinds order by kind.
// Numeric values compare numerically across int/float.
func (v Value) Compare(w Value) int {
	if v.numeric() && w.numeric() {
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindBool:
		switch {
		case v.b == w.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// String renders v in Datalog source syntax: strings are single-quoted with
// quote doubling, so the printer's output re-parses to the same value.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("value(%d)", uint8(v.kind))
	}
}

// SQL renders v as a SQL literal (identical to String for the supported
// kinds; booleans render as TRUE/FALSE).
func (v Value) SQL() string {
	if v.kind == KindBool {
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	}
	return v.String()
}

// Tuple is a fixed-arity sequence of values: one row of a relation.
type Tuple []Value

// Key returns a canonical text encoding of t usable as a map key. Two
// tuples have the same key iff they are element-wise Equal (with numeric
// widening, so Int(1) and Float(1) collide, matching Equal).
//
// Key allocates a string per call; the hot paths (Relation membership, the
// evaluator's hash indexes) identify tuples by Tuple.Hash instead. Key is
// kept for contexts that genuinely need deterministic text (reference
// implementations in tests, external map keys that must be printable).
func (t Tuple) Key() string {
	var b strings.Builder
	b.Grow(len(t) * 8)
	for _, v := range t {
		switch v.kind {
		case KindNull:
			b.WriteString("n;")
		case KindInt:
			b.WriteString("f")
			b.WriteString(strconv.FormatFloat(float64(v.i), 'g', -1, 64))
			b.WriteByte(';')
		case KindFloat:
			b.WriteString("f")
			b.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
			b.WriteByte(';')
		case KindString:
			b.WriteString("s")
			b.WriteString(strconv.Itoa(len(v.s)))
			b.WriteByte(':')
			b.WriteString(v.s)
			b.WriteByte(';')
		case KindBool:
			if v.b {
				b.WriteString("bt;")
			} else {
				b.WriteString("bf;")
			}
		}
	}
	return b.String()
}

// Equal reports element-wise equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; shorter tuples order first.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Clone returns a copy of t that shares no backing storage.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
