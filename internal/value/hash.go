package value

import "math"

// Tuple identity is hash-native: every set and index structure in the
// system (Relation, the evaluator's hash indexes) buckets tuples by a
// 64-bit hash and resolves collisions with Equal. The hash must therefore
// agree with Equal exactly: Equal values hash identically, and unequal
// values may collide but are separated by the bucket scan.
//
// Numeric widening is the subtle case. Equal treats Int(1) and Float(1) as
// the same value, so both kinds hash through their widened float64 bit
// pattern. Negative zero is normalized to positive zero first (0.0 == -0.0
// as float64, so they must share a hash). Integers beyond 2^53 lose
// precision when widened and may share a bucket with a neighbour; Equal
// still separates them, so this costs a collision, never correctness.

// HashSeed is the initial accumulator for incremental tuple hashing with
// HashMix. Tuple.Hash is exactly HashMix folded over the elements, which
// lets callers hash a projection of a tuple in place without materializing
// the projected tuple.
const HashSeed uint64 = 14695981039346656037 // FNV-1a 64-bit offset basis

const hashPrime uint64 = 1099511628211 // FNV-1a 64-bit prime

// Per-kind tags keep values of different kinds from trivially colliding
// (e.g. Null vs the empty string). Int and Float share the numeric tag so
// widening works.
const (
	tagNull    uint64 = 0x9e3779b97f4a7c15
	tagNumeric uint64 = 0xbf58476d1ce4e5b9
	tagString  uint64 = 0x94d049bb133111eb
	tagBool    uint64 = 0xd6e8feb86659fd93
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// on 64-bit words, used to spread fixed-width payloads (numeric bits,
// booleans) across the hash space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash returns a 64-bit hash of v consistent with Equal: v.Equal(w) implies
// v.Hash() == w.Hash().
func (v Value) Hash() uint64 {
	switch v.kind {
	case KindNull:
		return tagNull
	case KindInt:
		return hashNumeric(float64(v.i))
	case KindFloat:
		return hashNumeric(v.f)
	case KindString:
		h := HashSeed ^ tagString
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * hashPrime
		}
		return h
	case KindBool:
		if v.b {
			return mix64(tagBool ^ 1)
		}
		return mix64(tagBool)
	default:
		return tagNull
	}
}

func hashNumeric(f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0.0: it compares equal to +0.0
	}
	return mix64(tagNumeric ^ math.Float64bits(f))
}

// HashMix folds one value into a running tuple hash. Folding the elements
// of a tuple over HashSeed yields Tuple.Hash; folding a subset of elements
// hashes that projection without building an intermediate tuple.
func HashMix(h uint64, v Value) uint64 {
	return (h ^ v.Hash()) * hashPrime
}

// Hash returns a 64-bit hash of t consistent with Tuple.Equal (element-wise
// Equal with numeric widening).
func (t Tuple) Hash() uint64 {
	h := HashSeed
	for _, v := range t {
		h = HashMix(h, v)
	}
	return h
}
