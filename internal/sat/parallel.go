// Parallel witness search. The guided and randomized searches split their
// budgets into index-ordered tasks executed by a small worker pool; each
// worker owns an independent Test instance built by Problem.TestFactory.
// Determinism: every task's outcome is a pure function of the Config, a
// task may be abandoned only when a lower-indexed task has already found a
// witness, and the lowest-indexed witness is the one returned — so the
// result does not depend on goroutine scheduling.
package sat

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"birds/internal/eval"
	"birds/internal/fol"
	"birds/internal/value"
)

// foundMin tracks the lowest task index that produced a witness.
type foundMin struct {
	v atomic.Int64
}

func newFoundMin() *foundMin {
	m := &foundMin{}
	m.v.Store(int64(^uint64(0) >> 1)) // no witness yet
	return m
}

func (m *foundMin) lower(i int64) {
	for {
		cur := m.v.Load()
		if i >= cur || m.v.CompareAndSwap(cur, i) {
			return
		}
	}
}

func (m *foundMin) below(i int64) bool { return m.v.Load() < i }

// runTasks executes n independent search tasks on at most `workers`
// goroutines and returns the witness of the lowest-indexed successful task.
// Each worker builds one Test instance from the problem's factory and
// reuses it across the tasks it claims.
func runTasks(p Problem, n, workers int,
	run func(i int, s *search) *eval.Database) *eval.Database {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	results := make([]*eval.Database, n)
	min := newFoundMin()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			test := p.TestFactory()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if min.below(int64(i)) {
					continue // a lower-indexed task already found a witness
				}
				s := &search{rels: p.Rels, test: test,
					cancel: func() bool { return min.below(int64(i)) }}
				if db := run(i, s); db != nil {
					results[i] = db
					min.lower(int64(i))
				}
			}
		}()
	}
	wg.Wait()
	for _, db := range results {
		if db != nil {
			return db
		}
	}
	return nil
}

// guidedParallel is the guided search fanned out over (disjunct, first
// variable value) tasks, each with an equal share of the guide budget.
func (o *Oracle) guidedParallel(p Problem, pl *pools, workers int) *eval.Database {
	specByName := make(map[string]RelSpec, len(p.Rels))
	for _, r := range p.Rels {
		specByName[r.Name] = r
	}

	// One task per (disjunct, value of the first variable); a ground
	// disjunct is a single task.
	type guidedTask struct {
		plan     *disjunctPlan
		firstVal int // index into plan.varPool[plan.vars[0]], or -1
	}
	var tasks []guidedTask
	for _, dj := range fol.DisjunctiveForm(p.Guide) {
		plan, ok := planDisjunct(dj, specByName, pl)
		if !ok {
			continue
		}
		pp := &plan
		if len(plan.vars) == 0 {
			tasks = append(tasks, guidedTask{plan: pp, firstVal: -1})
			continue
		}
		for vi := range plan.varPool[plan.vars[0]] {
			tasks = append(tasks, guidedTask{plan: pp, firstVal: vi})
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	// Split the guide budget exactly: task i gets perTask assignments plus
	// one of the remainder, so the total tested assignments never exceed
	// GuideBudget (tasks whose share rounds to zero are skipped).
	perTask := o.cfg.GuideBudget / len(tasks)
	extra := o.cfg.GuideBudget % len(tasks)

	return runTasks(p, len(tasks), workers, func(i int, s *search) *eval.Database {
		t := tasks[i]
		budget := perTask
		if i < extra {
			budget++
		}
		if budget == 0 {
			return nil
		}
		env := make(map[string]value.Value, len(t.plan.vars))
		if t.firstVal < 0 {
			return o.assignDFS(s, t.plan, env, 0, &budget)
		}
		v := t.plan.vars[0]
		env[v] = t.plan.varPool[v][t.firstVal]
		if !cmpsConsistent(t.plan.cmps, env) {
			return nil
		}
		return o.assignDFS(s, t.plan, env, 1, &budget)
	})
}

// randomParallel splits the random trials into per-worker chunks with
// independently seeded (but deterministic) PRNG streams.
func (o *Oracle) randomParallel(p Problem, pl *pools, workers int) *eval.Database {
	// A few chunks per worker smooths imbalance from early-found witnesses.
	chunks := workers * 4
	if chunks > o.cfg.RandomTrials {
		chunks = o.cfg.RandomTrials
	}
	if chunks == 0 {
		return nil
	}
	// Distribute the trials exactly: chunk ci runs perChunk trials plus one
	// of the remainder, totalling RandomTrials.
	perChunk := o.cfg.RandomTrials / chunks
	extra := o.cfg.RandomTrials % chunks

	return runTasks(p, chunks, workers, func(ci int, s *search) *eval.Database {
		trials := perChunk
		if ci < extra {
			trials++
		}
		rng := rand.New(rand.NewSource(o.cfg.Seed + int64(ci+1)*0x5e3779b97f4a7c15))
		for trial := 0; trial < trials; trial++ {
			if s.cancelled() {
				return nil
			}
			db := emptyInstance(p.Rels)
			for _, r := range p.Rels {
				n := rng.Intn(o.cfg.MaxTuples + 1)
				for k := 0; k < n; k++ {
					t := make(value.Tuple, r.Arity())
					for j, ty := range r.Types {
						pool := pl.forType(ty)
						t[j] = pool[rng.Intn(len(pool))]
					}
					db.Insert(predSym(r.Name), t)
				}
			}
			if s.test(db) {
				return db
			}
		}
		return nil
	})
}
