// Package sat is the satisfiability oracle of the validation algorithm —
// the stand-in for the Z3 theorem prover used by the paper's BIRDS
// implementation (§6.1).
//
// Every check of Algorithm 1 reduces to "does a small database instance
// exist that witnesses a property?". The oracle searches for such a witness
// three ways, in order:
//
//  1. guided search: the disjuncts of a guide sentence are instantiated as
//     minimal candidate models (the positive atoms of a disjunct, with
//     variables assigned from typed domain pools built around the
//     program's constants and the gaps between them);
//  2. exhaustive small-scope search over tiny instances, when the state
//     space fits the budget;
//  3. randomized search over bounded instances.
//
// A found witness is definitive (the property is satisfiable); exhausting
// the budget without a witness is reported as unsatisfiable-within-bounds.
// GNFO satisfiability is finitely controllable (Lemma 3.1 relies on this),
// so small-scope search is the right shape of decision procedure; the
// substitution and its guarantees are documented in DESIGN.md.
package sat

import (
	"math/rand"
	"sort"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/fol"
	"birds/internal/value"
)

// RelSpec describes one EDB relation the oracle may populate.
type RelSpec struct {
	Name  string
	Types []string // attribute type names: int, float, string, bool, date...
}

// Arity returns the relation's arity.
func (r RelSpec) Arity() int { return len(r.Types) }

// SpecsFromDecls converts parser declarations into oracle specs.
func SpecsFromDecls(decls ...*datalog.RelDecl) []RelSpec {
	var out []RelSpec
	for _, d := range decls {
		types := make([]string, len(d.Attrs))
		for i, a := range d.Attrs {
			types[i] = a.Type
		}
		out = append(out, RelSpec{Name: d.Name, Types: types})
	}
	return out
}

// Config bounds the oracle's search.
type Config struct {
	MaxTuples        int   // tuples per relation in randomized search
	RandomTrials     int   // number of random instances
	ExhaustiveBudget int   // max instances enumerated exhaustively
	GuideBudget      int   // max variable assignments tried in guided search
	Seed             int64 // PRNG seed (deterministic by default)
	// Parallelism is the number of worker goroutines the guided and random
	// searches may use; values <= 1 search sequentially. Parallel search
	// requires Problem.TestFactory (the Test closures of Algorithm 1 carry
	// per-evaluator scratch state and are not goroutine-safe). Outcomes are
	// deterministic for a fixed Config: the search space is split into
	// index-ordered tasks and the lowest-indexed witness wins regardless of
	// scheduling. The partition changes coverage, not just witness identity:
	// each task explores its region under an equal share of the budget
	// (total budget is never exceeded), so when the budget is the binding
	// constraint a witness found at one Parallelism setting may be missed at
	// another — the same caveat that already applies to changing the budget
	// itself. A reported witness is always Test-verified regardless, so
	// "unsatisfiable within bounds" remains the only soundness caveat.
	Parallelism int
}

// DefaultConfig returns the bounds used by the validator.
func DefaultConfig() Config {
	return Config{
		MaxTuples:        3,
		RandomTrials:     3000,
		ExhaustiveBudget: 150000,
		GuideBudget:      150000,
		Seed:             1,
	}
}

// Problem is one witness search.
type Problem struct {
	Rels        []RelSpec
	ExtraConsts []value.Value // constants seeding the domain pools
	Guide       fol.Formula   // optional sentence guiding minimal models
	// Test reports whether db is a witness. It may mutate db's IDB
	// relations (e.g. by running an evaluator) but must not change the
	// EDB relations named in Rels.
	Test func(db *eval.Database) bool
	// TestFactory, when set, builds an independent Test instance (with its
	// own compiled evaluators) for one search worker. It enables parallel
	// search under Config.Parallelism > 1; without it the oracle searches
	// sequentially with Test.
	TestFactory func() func(db *eval.Database) bool
}

// Oracle runs witness searches under a fixed configuration.
type Oracle struct {
	cfg Config
}

// New returns an oracle with the given configuration.
func New(cfg Config) *Oracle { return &Oracle{cfg: cfg} }

// Find searches for a witness instance; it returns nil if none was found
// within the budget.
func (o *Oracle) Find(p Problem) *eval.Database {
	pools := buildPools(p.ExtraConsts)
	workers := o.cfg.Parallelism
	if p.TestFactory == nil {
		workers = 1
	}
	if p.Guide != nil {
		if workers > 1 {
			if db := o.guidedParallel(p, pools, workers); db != nil {
				return db
			}
		} else if db := o.guided(p, pools); db != nil {
			return db
		}
	}
	if db := o.exhaustive(p, pools); db != nil {
		return db
	}
	if workers > 1 {
		return o.randomParallel(p, pools, workers)
	}
	return o.random(p, pools)
}

// --- domain pools -------------------------------------------------------

type pools struct {
	ints    []value.Value
	floats  []value.Value
	strings []value.Value
	bools   []value.Value
}

// buildPools derives per-type candidate values from the constants of the
// problem: the constants themselves plus representatives of the gaps
// between and around them (needed to witness comparison predicates).
func buildPools(consts []value.Value) *pools {
	p := &pools{bools: []value.Value{value.Bool(false), value.Bool(true)}}

	var ints []int64
	var floats []float64
	var strs []string
	for _, c := range consts {
		switch c.Kind() {
		case value.KindInt:
			ints = append(ints, c.AsInt())
		case value.KindFloat:
			floats = append(floats, c.AsFloat())
		case value.KindString:
			strs = append(strs, c.AsString())
		}
	}

	addInt := func(v int64) {
		for _, u := range ints {
			if u == v {
				return
			}
		}
		ints = append(ints, v)
	}
	if len(ints) == 0 {
		ints = []int64{0, 1}
	} else {
		sorted := append([]int64(nil), ints...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		addInt(sorted[0] - 1)
		addInt(sorted[len(sorted)-1] + 1)
		for i := 0; i+1 < len(sorted); i++ {
			if sorted[i+1]-sorted[i] > 1 {
				addInt(sorted[i] + 1)
			}
		}
	}
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	for _, v := range ints {
		p.ints = append(p.ints, value.Int(v))
	}

	if len(floats) == 0 {
		p.floats = []value.Value{value.Float(0), value.Float(1)}
	} else {
		sort.Float64s(floats)
		out := []float64{floats[0] - 1}
		for i, f := range floats {
			out = append(out, f)
			if i+1 < len(floats) {
				out = append(out, (f+floats[i+1])/2)
			}
		}
		out = append(out, floats[len(floats)-1]+1)
		seen := map[float64]bool{}
		for _, f := range out {
			if !seen[f] {
				seen[f] = true
				p.floats = append(p.floats, value.Float(f))
			}
		}
	}

	seenStr := map[string]bool{}
	addStr := func(s string) {
		if !seenStr[s] {
			seenStr[s] = true
			strs = append(strs, s)
		}
	}
	for _, s := range strs {
		seenStr[s] = true
	}
	if len(strs) == 0 {
		addStr("a")
		addStr("b")
	} else {
		base := append([]string(nil), strs...)
		addStr("!") // sorts below printable identifiers and digits
		for _, s := range base {
			addStr(s + "0") // sorts immediately above s
		}
	}
	sort.Strings(strs)
	for _, s := range strs {
		p.strings = append(p.strings, value.Str(s))
	}
	return p
}

// forType returns the pool for an attribute type name.
func (p *pools) forType(t string) []value.Value {
	switch t {
	case "int", "integer":
		return p.ints
	case "float", "real":
		return p.floats
	case "bool", "boolean":
		return p.bools
	default: // string, text, date, timestamp
		return p.strings
	}
}

// all returns the union of all pools (used when a variable's type is
// unknown).
func (p *pools) all() []value.Value {
	out := make([]value.Value, 0, len(p.ints)+len(p.floats)+len(p.strings)+len(p.bools))
	out = append(out, p.ints...)
	out = append(out, p.strings...)
	out = append(out, p.floats...)
	out = append(out, p.bools...)
	return out
}

// --- guided search ------------------------------------------------------

// disjunctPlan is one guide disjunct prepared for enumeration: its positive
// atoms and comparisons, with every variable assigned a typed candidate
// pool.
type disjunctPlan struct {
	atoms   []*fol.Atom
	cmps    []*fol.Cmp
	vars    []string
	varPool map[string][]value.Value
}

// planDisjunct prepares one disjunct; ok is false when the disjunct cannot
// seed a model (it mentions a computed relation).
func planDisjunct(dj fol.Conjunct, specByName map[string]RelSpec, pl *pools) (plan disjunctPlan, ok bool) {
	ok = true
	for _, part := range dj.Parts {
		switch g := part.(type) {
		case *fol.Atom:
			if _, known := specByName[g.Pred]; !known {
				ok = false // atom over a computed relation: cannot seed
			}
			plan.atoms = append(plan.atoms, g)
		case *fol.Cmp:
			plan.cmps = append(plan.cmps, g)
		}
	}
	if !ok {
		return plan, false
	}
	// Collect variables with a type-derived pool.
	plan.varPool = make(map[string][]value.Value)
	addVar := func(name string, pool []value.Value) {
		if _, seen := plan.varPool[name]; !seen {
			plan.varPool[name] = pool
			plan.vars = append(plan.vars, name)
		}
	}
	for _, a := range plan.atoms {
		spec := specByName[a.Pred]
		for i, t := range a.Args {
			if t.IsVar() {
				addVar(t.Var, pl.forType(spec.Types[i]))
			}
		}
	}
	for _, c := range plan.cmps {
		for _, t := range []datalog.Term{c.L, c.R} {
			if t.IsVar() {
				addVar(t.Var, pl.all())
			}
		}
	}
	return plan, true
}

// search bundles the per-worker state of one witness search: the relation
// specs, the Test instance to call, and an optional cancellation probe
// (parallel workers abandon a task when a lower-indexed task has found a
// witness, which cannot change the chosen result).
type search struct {
	rels   []RelSpec
	test   func(db *eval.Database) bool
	cancel func() bool
}

func (s *search) cancelled() bool { return s.cancel != nil && s.cancel() }

// guided instantiates each disjunct of the guide sentence as a minimal
// candidate model: exactly the positive atoms of the disjunct, with
// variables enumerated over typed pools.
func (o *Oracle) guided(p Problem, pl *pools) *eval.Database {
	specByName := make(map[string]RelSpec, len(p.Rels))
	for _, r := range p.Rels {
		specByName[r.Name] = r
	}
	budget := o.cfg.GuideBudget
	s := &search{rels: p.Rels, test: p.Test}

	for _, dj := range fol.DisjunctiveForm(p.Guide) {
		plan, ok := planDisjunct(dj, specByName, pl)
		if !ok {
			continue
		}
		env := make(map[string]value.Value, len(plan.vars))
		if db := o.assignDFS(s, &plan, env, 0, &budget); db != nil {
			return db
		}
		if budget <= 0 {
			return nil
		}
	}
	return nil
}

// assignDFS enumerates assignments for plan.vars[i:], pruning on ground
// comparisons, and tests the minimal model of each full assignment.
func (o *Oracle) assignDFS(s *search, plan *disjunctPlan,
	env map[string]value.Value, i int, budget *int) *eval.Database {
	if *budget <= 0 || s.cancelled() {
		return nil
	}
	if i == len(plan.vars) {
		*budget--
		db := emptyInstance(s.rels)
		for _, a := range plan.atoms {
			t := make(value.Tuple, len(a.Args))
			for j, arg := range a.Args {
				if arg.IsConst() {
					t[j] = arg.Const
				} else {
					t[j] = env[arg.Var]
				}
			}
			db.Insert(predSym(a.Pred), t)
		}
		if s.test(db) {
			return db
		}
		return nil
	}
	v := plan.vars[i]
	for _, val := range plan.varPool[v] {
		env[v] = val
		if !cmpsConsistent(plan.cmps, env) {
			continue
		}
		if db := o.assignDFS(s, plan, env, i+1, budget); db != nil {
			return db
		}
		if *budget <= 0 || s.cancelled() {
			break
		}
	}
	delete(env, v)
	return nil
}

// cmpsConsistent checks the ground comparisons under a partial assignment.
func cmpsConsistent(cmps []*fol.Cmp, env map[string]value.Value) bool {
	resolve := func(t datalog.Term) (value.Value, bool) {
		if t.IsConst() {
			return t.Const, true
		}
		v, ok := env[t.Var]
		return v, ok
	}
	for _, c := range cmps {
		l, okL := resolve(c.L)
		r, okR := resolve(c.R)
		if okL && okR && !c.Op.Eval(l, r) {
			return false
		}
	}
	return true
}

// --- exhaustive small-scope search ---------------------------------------

// exhaustive enumerates every instance whose relations each hold at most
// two tuples drawn from reduced pools, provided the state space fits the
// budget.
func (o *Oracle) exhaustive(p Problem, pl *pools) *eval.Database {
	const maxPerRel = 2
	// Reduced pools keep the search tractable while retaining the
	// constants (which come first in pool construction order).
	reduce := func(vals []value.Value, n int) []value.Value {
		if len(vals) <= n {
			return vals
		}
		return vals[:n]
	}
	reduced := &pools{
		ints:    reduce(pl.ints, 3),
		floats:  reduce(pl.floats, 2),
		strings: reduce(pl.strings, 3),
		bools:   pl.bools,
	}

	// Tuple candidate pools per relation.
	tuplePools := make([][]value.Tuple, len(p.Rels))
	total := 1.0
	for i, r := range p.Rels {
		tp := tuplesOf(r, reduced)
		tuplePools[i] = tp
		// Number of subsets of size ≤ maxPerRel.
		n := float64(len(tp))
		count := 1 + n + n*(n-1)/2
		total *= count
		if total > float64(o.cfg.ExhaustiveBudget) {
			return nil // too large; fall back to random search
		}
	}

	db := emptyInstance(p.Rels)
	var rec func(i int) *eval.Database
	rec = func(i int) *eval.Database {
		if i == len(p.Rels) {
			if p.Test(db) {
				return db.Clone()
			}
			return nil
		}
		sym := predSym(p.Rels[i].Name)
		// Subsets of size 0, 1, 2.
		if w := rec(i + 1); w != nil {
			return w
		}
		tp := tuplePools[i]
		for a := 0; a < len(tp); a++ {
			db.Insert(sym, tp[a])
			if w := rec(i + 1); w != nil {
				return w
			}
			for b := a + 1; b < len(tp); b++ {
				db.Insert(sym, tp[b])
				if w := rec(i + 1); w != nil {
					return w
				}
				db.Delete(sym, tp[b])
			}
			db.Delete(sym, tp[a])
		}
		return nil
	}
	return rec(0)
}

// tuplesOf enumerates the cartesian product of the attribute pools.
func tuplesOf(r RelSpec, pl *pools) []value.Tuple {
	out := []value.Tuple{{}}
	for _, t := range r.Types {
		pool := pl.forType(t)
		var next []value.Tuple
		for _, prefix := range out {
			for _, v := range pool {
				tup := make(value.Tuple, len(prefix)+1)
				copy(tup, prefix)
				tup[len(prefix)] = v
				next = append(next, tup)
			}
		}
		out = next
	}
	return out
}

// --- randomized search ----------------------------------------------------

func (o *Oracle) random(p Problem, pl *pools) *eval.Database {
	rng := rand.New(rand.NewSource(o.cfg.Seed))
	for trial := 0; trial < o.cfg.RandomTrials; trial++ {
		db := emptyInstance(p.Rels)
		for _, r := range p.Rels {
			n := rng.Intn(o.cfg.MaxTuples + 1)
			for k := 0; k < n; k++ {
				t := make(value.Tuple, r.Arity())
				for j, ty := range r.Types {
					pool := pl.forType(ty)
					t[j] = pool[rng.Intn(len(pool))]
				}
				db.Insert(predSym(r.Name), t)
			}
		}
		if p.Test(db) {
			return db
		}
	}
	return nil
}

// emptyInstance builds a database with an empty relation per spec.
func emptyInstance(rels []RelSpec) *eval.Database {
	db := eval.NewDatabase()
	for _, r := range rels {
		db.Ensure(predSym(r.Name), r.Arity())
	}
	return db
}

// predSym decodes the +r / -r delta encoding used in formula atoms.
func predSym(name string) datalog.PredSym {
	if len(name) > 0 {
		switch name[0] {
		case '+':
			return datalog.Ins(name[1:])
		case '-':
			return datalog.Del(name[1:])
		}
	}
	return datalog.Pred(name)
}
