package sat

import (
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/fol"
	"birds/internal/value"
)

func atom(pred string, vars ...string) *fol.Atom {
	args := make([]datalog.Term, len(vars))
	for i, v := range vars {
		args[i] = datalog.V(v)
	}
	return &fol.Atom{Pred: pred, Args: args}
}

func testFO(sentence fol.Formula, consts ...value.Value) func(*eval.Database) bool {
	return func(db *eval.Database) bool {
		m := fol.NewModel(db, consts...)
		return m.Sat(sentence)
	}
}

func TestFindSatisfiableAtom(t *testing.T) {
	o := New(DefaultConfig())
	s := atom("r", "X")
	db := o.Find(Problem{
		Rels:  []RelSpec{{Name: "r", Types: []string{"int"}}},
		Guide: s,
		Test:  testFO(s),
	})
	if db == nil {
		t.Fatal("∃X r(X) should be satisfiable")
	}
	if db.Rel(datalog.Pred("r")).Empty() {
		t.Fatal("witness should populate r")
	}
}

func TestFindUnsatisfiableContradiction(t *testing.T) {
	o := New(DefaultConfig())
	s := fol.NewAnd(atom("r", "X"), fol.NewNot(atom("r", "X")))
	db := o.Find(Problem{
		Rels:  []RelSpec{{Name: "r", Types: []string{"int"}}},
		Guide: s,
		Test:  testFO(s),
	})
	if db != nil {
		t.Fatalf("contradiction should have no witness, got\n%s", db)
	}
}

func TestComparisonWitnessNeedsGapValues(t *testing.T) {
	// ∃X r(X) ∧ X > 5 ∧ X < 7 — only X = 6 works; the pool must include
	// the gap value between the constants 5 and 7.
	o := New(DefaultConfig())
	s := fol.NewAnd(
		atom("r", "X"),
		&fol.Cmp{Op: datalog.OpGt, L: datalog.V("X"), R: datalog.CInt(5)},
		&fol.Cmp{Op: datalog.OpLt, L: datalog.V("X"), R: datalog.CInt(7)},
	)
	consts := []value.Value{value.Int(5), value.Int(7)}
	db := o.Find(Problem{
		Rels:        []RelSpec{{Name: "r", Types: []string{"int"}}},
		ExtraConsts: consts,
		Guide:       s,
		Test:        testFO(s, consts...),
	})
	if db == nil {
		t.Fatal("should find X = 6")
	}
	if !db.Rel(datalog.Pred("r")).Contains(value.Tuple{value.Int(6)}) {
		t.Fatalf("witness should be 6, got %s", db.Rel(datalog.Pred("r")))
	}
}

func TestStringGapValues(t *testing.T) {
	// ∃X r(X) ∧ X > '1962-12-31': needs a string above the constant.
	o := New(DefaultConfig())
	s := fol.NewAnd(
		atom("r", "X"),
		&fol.Cmp{Op: datalog.OpGt, L: datalog.V("X"), R: datalog.CStr("1962-12-31")},
	)
	consts := []value.Value{value.Str("1962-12-31")}
	db := o.Find(Problem{
		Rels:        []RelSpec{{Name: "r", Types: []string{"date"}}},
		ExtraConsts: consts,
		Guide:       s,
		Test:        testFO(s, consts...),
	})
	if db == nil {
		t.Fatal("should find a date above the constant")
	}
}

func TestUnsatNegationAcrossRelations(t *testing.T) {
	// r ⊆ s required and r ⊄ s required simultaneously: a Test that can
	// never pass; oracle must exhaust and return nil.
	o := New(Config{MaxTuples: 2, RandomTrials: 200, ExhaustiveBudget: 20000, GuideBudget: 2000, Seed: 1})
	sub := fol.NewNot(fol.NewExists([]string{"X"},
		fol.NewAnd(atom("r", "X"), fol.NewNot(atom("s", "X")))))
	notSub := fol.NewNot(sub)
	s := fol.NewAnd(sub, notSub)
	db := o.Find(Problem{
		Rels: []RelSpec{{Name: "r", Types: []string{"int"}}, {Name: "s", Types: []string{"int"}}},
		Test: testFO(s),
	})
	if db != nil {
		t.Fatal("r⊆s ∧ ¬(r⊆s) should be unsatisfiable")
	}
}

func TestExhaustiveFindsSmallWitness(t *testing.T) {
	// Without a guide, the exhaustive phase must find: ∃X r(X) ∧ ¬s(X).
	o := New(DefaultConfig())
	s := fol.NewAnd(atom("r", "X"), fol.NewNot(atom("s", "X")))
	db := o.Find(Problem{
		Rels: []RelSpec{{Name: "r", Types: []string{"int"}}, {Name: "s", Types: []string{"int"}}},
		Test: testFO(s),
	})
	if db == nil {
		t.Fatal("exhaustive search should find a witness")
	}
}

func TestRandomSearchFallback(t *testing.T) {
	// Blow past the exhaustive budget with a wide relation; the randomized
	// phase must still find a witness for a satisfiable sentence.
	cfg := DefaultConfig()
	cfg.ExhaustiveBudget = 1
	o := New(cfg)
	s := atom("wide", "A", "B", "C", "D")
	db := o.Find(Problem{
		Rels: []RelSpec{{Name: "wide", Types: []string{"int", "int", "string", "bool"}}},
		Test: testFO(s),
	})
	if db == nil {
		t.Fatal("random search should find a witness")
	}
}

func TestGuidedSearchSkipsUnknownAtoms(t *testing.T) {
	// Guide mentions a computed relation not in Rels; the oracle must not
	// crash and must fall through to the other phases.
	o := New(DefaultConfig())
	s := fol.NewAnd(atom("computed", "X"), atom("r", "X"))
	db := o.Find(Problem{
		Rels:  []RelSpec{{Name: "r", Types: []string{"int"}}},
		Guide: s,
		Test: func(db *eval.Database) bool {
			// The witness only needs r nonempty for this test.
			return !db.RelOrEmpty(datalog.Pred("r"), 1).Empty()
		},
	})
	if db == nil {
		t.Fatal("should fall back and find r nonempty")
	}
}

func TestDeltaPredicatesInSpecs(t *testing.T) {
	// +v / -v appear as EDB relations in incrementalized programs.
	o := New(DefaultConfig())
	s := atom("+v", "X")
	db := o.Find(Problem{
		Rels:  []RelSpec{{Name: "+v", Types: []string{"int"}}},
		Guide: s,
		Test:  testFO(s),
	})
	if db == nil {
		t.Fatal("delta-relation witness should be found")
	}
	if db.Rel(datalog.Ins("v")).Empty() {
		t.Fatal("witness must populate +v under the Ins symbol")
	}
}

func TestSpecsFromDecls(t *testing.T) {
	p, err := datalog.Parse(`
source r(a:int, b:string).
view v(x:int).
`)
	if err != nil {
		t.Fatal(err)
	}
	specs := SpecsFromDecls(append(p.Sources, p.View)...)
	if len(specs) != 2 || specs[0].Name != "r" || specs[0].Arity() != 2 || specs[1].Name != "v" {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].Types[1] != "string" {
		t.Errorf("types = %v", specs[0].Types)
	}
}

func TestPoolsCoverGapsAndBounds(t *testing.T) {
	pl := buildPools([]value.Value{value.Int(5), value.Int(7), value.Str("m")})
	hasInt := func(v int64) bool {
		for _, x := range pl.ints {
			if x.AsInt() == v {
				return true
			}
		}
		return false
	}
	for _, want := range []int64{4, 5, 6, 7, 8} {
		if !hasInt(want) {
			t.Errorf("int pool missing %d: %v", want, pl.ints)
		}
	}
	hasStr := func(s string) bool {
		for _, x := range pl.strings {
			if x.AsString() == s {
				return true
			}
		}
		return false
	}
	if !hasStr("m") || !hasStr("m0") || !hasStr("!") {
		t.Errorf("string pool missing gap values: %v", pl.strings)
	}
	// Empty pools get defaults.
	empty := buildPools(nil)
	if len(empty.ints) == 0 || len(empty.strings) == 0 || len(empty.bools) != 2 || len(empty.floats) == 0 {
		t.Error("default pools should be nonempty")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		o := New(DefaultConfig())
		s := fol.NewAnd(atom("r", "X", "Y"), fol.NewNot(atom("s", "Y")))
		db := o.Find(Problem{
			Rels: []RelSpec{
				{Name: "r", Types: []string{"int", "string"}},
				{Name: "s", Types: []string{"string"}},
			},
			Guide: s,
			Test:  testFO(s),
		})
		if db == nil {
			return "<nil>"
		}
		return db.String()
	}
	if run() != run() {
		t.Error("oracle is not deterministic")
	}
}
