package datalog

import (
	"fmt"
	"strconv"
	"strings"

	"birds/internal/value"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a complete putback program: `source`/`view` declarations
// followed by rules and constraints.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

// ParseRule parses a single rule or constraint (handy in tests and tools).
func ParseRule(src string) (*Rule, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	r, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("trailing input after rule")
	}
	return r, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errorf("expected %s, found %s %q", k, p.cur().kind, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokIdent && (p.cur().text == "source" || p.cur().text == "view") &&
			p.peek().kind == tokIdent {
			kw := p.advance().text
			decl, err := p.parseRelDecl()
			if err != nil {
				return nil, err
			}
			if kw == "source" {
				if prog.Source(decl.Name) != nil {
					return nil, p.errorf("duplicate source declaration %q", decl.Name)
				}
				prog.Sources = append(prog.Sources, decl)
			} else {
				if prog.View != nil {
					return nil, p.errorf("duplicate view declaration %q", decl.Name)
				}
				prog.View = decl
			}
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog, nil
}

// parseRelDecl parses name(attr:type, ...) followed by a dot.
func (p *parser) parseRelDecl() (*RelDecl, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	decl := &RelDecl{Name: name.text}
	for {
		attr, err := p.parseAttrDecl()
		if err != nil {
			return nil, err
		}
		decl.Attrs = append(decl.Attrs, *attr)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return decl, nil
}

var validTypes = map[string]bool{
	"int": true, "integer": true, "float": true, "real": true,
	"string": true, "text": true, "bool": true, "boolean": true,
	"date": true, "timestamp": true,
}

func (p *parser) parseAttrDecl() (*AttrDecl, error) {
	var name string
	switch p.cur().kind {
	case tokIdent, tokVar:
		name = p.advance().text
	case tokString:
		name = p.advance().text
	default:
		return nil, p.errorf("expected attribute name, found %q", p.cur().text)
	}
	typ := "string"
	if p.cur().kind == tokColon {
		p.advance()
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if !validTypes[t.text] {
			return nil, p.errorf("unknown attribute type %q", t.text)
		}
		typ = t.text
	}
	return &AttrDecl{Name: name, Type: typ}, nil
}

// parseRule parses either `head :- body.`, a fact `head.`, or a constraint
// `_|_ :- body.`.
func (p *parser) parseRule() (*Rule, error) {
	var head *Atom
	if p.cur().kind == tokBottom {
		p.advance()
	} else {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		head = a
	}
	r := &Rule{Head: head}
	if p.cur().kind == tokDot {
		p.advance()
		if head == nil {
			return nil, p.errorf("a constraint must have a body")
		}
		return r, nil
	}
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, *lit)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return r, nil
}

// parseLiteral parses one conjunct: [not] atom, or [not] term cmp term.
func (p *parser) parseLiteral() (*Literal, error) {
	neg := false
	if p.cur().kind == tokNot {
		p.advance()
		neg = true
	}
	// A delta or plain atom starts with +, -, or an identifier followed
	// by '('. Everything else must be a built-in comparison.
	switch p.cur().kind {
	case tokPlus, tokMinus:
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &Literal{Neg: neg, Atom: a}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			a, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &Literal{Neg: neg, Atom: a}, nil
		}
	}
	// Built-in: term op term.
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.cur().kind {
	case tokEq:
		op = OpEq
	case tokNe:
		op = OpNe
	case tokLt:
		op = OpLt
	case tokGt:
		op = OpGt
	case tokLe:
		op = OpLe
	case tokGe:
		op = OpGe
	default:
		return nil, p.errorf("expected comparison operator, found %q", p.cur().text)
	}
	p.advance()
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Literal{Neg: neg, Builtin: &Builtin{Op: op, L: *l, R: *r}}, nil
}

// parseAtom parses [+|-] name ( term, ... ).
func (p *parser) parseAtom() (*Atom, error) {
	delta := NoDelta
	switch p.cur().kind {
	case tokPlus:
		p.advance()
		delta = Insert
	case tokMinus:
		p.advance()
		delta = Delete
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	a := &Atom{Pred: PredSym{Name: name.text, Delta: delta}}
	if p.cur().kind == tokRParen {
		p.advance()
		return nil, p.errorf("predicate %q must have at least one argument", name.text)
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, *t)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return a, nil
}

// parseTerm parses a variable, anonymous variable, or constant.
func (p *parser) parseTerm() (*Term, error) {
	switch p.cur().kind {
	case tokVar:
		t := p.advance()
		return &Term{Kind: TermVar, Var: t.text}, nil
	case tokAnon:
		p.advance()
		return &Term{Kind: TermAnon}, nil
	case tokString:
		t := p.advance()
		return &Term{Kind: TermConst, Const: value.Str(t.text)}, nil
	case tokNumber:
		t := p.advance()
		return numberTerm(t.text, false)
	case tokMinus:
		p.advance()
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		return numberTerm(t.text, true)
	case tokIdent:
		t := p.advance()
		if t.text == "true" {
			return &Term{Kind: TermConst, Const: value.Bool(true)}, nil
		}
		// Bare lowercase identifiers in term position are string
		// constants (Prolog-atom style), so `D = unknown` works.
		return &Term{Kind: TermConst, Const: value.Str(t.text)}, nil
	case tokBottom:
		// The keyword `false` lexes as bottom; in term position it is the
		// boolean constant.
		if p.cur().text == "false" {
			p.advance()
			return &Term{Kind: TermConst, Const: value.Bool(false)}, nil
		}
	}
	return nil, p.errorf("expected a term, found %q", p.cur().text)
}

func numberTerm(text string, negated bool) (*Term, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("datalog: bad float literal %q: %w", text, err)
		}
		if negated {
			f = -f
		}
		return &Term{Kind: TermConst, Const: value.Float(f)}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("datalog: bad integer literal %q: %w", text, err)
	}
	if negated {
		i = -i
	}
	return &Term{Kind: TermConst, Const: value.Int(i)}, nil
}
