package datalog

import (
	"testing"
)

func kinds(t *testing.T, src string) []tokKind {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]tokKind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.kind)
	}
	return out
}

func TestLexOperators(t *testing.T) {
	cases := map[string]tokKind{
		"=":  tokEq,
		"<>": tokNe,
		"!=": tokNe,
		"≠":  tokNe,
		"<":  tokLt,
		">":  tokGt,
		"<=": tokLe,
		">=": tokGe,
		":-": tokImplies,
		":":  tokColon,
		"+":  tokPlus,
		"-":  tokMinus,
		"(":  tokLParen,
		")":  tokRParen,
		",":  tokComma,
		".":  tokDot,
	}
	for src, want := range cases {
		got := kinds(t, src)
		if len(got) != 2 || got[0] != want {
			t.Errorf("lex(%q) = %v, want [%v EOF]", src, got, want)
		}
	}
}

func TestLexBottomVariants(t *testing.T) {
	for _, src := range []string{"_|_", "⊥", "false", "bot"} {
		got := kinds(t, src)
		if len(got) != 2 || got[0] != tokBottom {
			t.Errorf("lex(%q) = %v, want bottom", src, got)
		}
	}
}

func TestLexNegationVariants(t *testing.T) {
	for _, src := range []string{"not", "NOT", "¬", "!"} {
		got := kinds(t, src)
		if len(got) != 2 || got[0] != tokNot {
			t.Errorf("lex(%q) = %v, want not", src, got)
		}
	}
}

func TestLexIdentifiersAndVariables(t *testing.T) {
	toks, err := lexAll("emp_name Emp_Name _ _X x9 X9")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tokIdent, tokVar, tokAnon, tokVar, tokIdent, tokVar, tokEOF}
	for i, k := range want {
		if toks[i].kind != k {
			t.Errorf("token %d (%q) = %v, want %v", i, toks[i].text, toks[i].kind, k)
		}
	}
}

func TestLexNumbersAndDots(t *testing.T) {
	// "r(1)." — the final dot terminates the clause, it is not part of the
	// number.
	toks, err := lexAll("1.5 42 7.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "1.5" || toks[1].text != "42" {
		t.Errorf("number texts = %q %q", toks[0].text, toks[1].text)
	}
	if toks[2].text != "7" || toks[3].kind != tokDot {
		t.Errorf("trailing dot mis-lexed: %q %v", toks[2].text, toks[3].kind)
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := lexAll("'hello' 'it''s' ''")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "hello" || toks[1].text != "it's" || toks[2].text != "" {
		t.Errorf("strings = %q %q %q", toks[0].text, toks[1].text, toks[2].text)
	}
	if _, err := lexAll("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexCommentsAndPositions(t *testing.T) {
	toks, err := lexAll("a % comment to end of line\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].text != "a" || toks[1].text != "b" {
		t.Fatalf("comment not skipped: %+v", toks)
	}
	if toks[1].line != 2 || toks[1].col != 1 {
		t.Errorf("position of b = %d:%d, want 2:1", toks[1].line, toks[1].col)
	}
	// Comment at EOF without newline.
	toks, err = lexAll("x % trailing")
	if err != nil || len(toks) != 2 {
		t.Errorf("trailing comment: %v %v", toks, err)
	}
}

func TestLexRejectsUnknownCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "[", "&"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexUnicodeTypography(t *testing.T) {
	got := kinds(t, "⊥ :- v(X), ¬r(X), X ≠ 1.")
	want := []tokKind{tokBottom, tokImplies, tokIdent, tokLParen, tokVar, tokRParen, tokComma,
		tokNot, tokIdent, tokLParen, tokVar, tokRParen, tokComma, tokVar, tokNe, tokNumber, tokDot, tokEOF}
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}
