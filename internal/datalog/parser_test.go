package datalog

import (
	"strings"
	"testing"

	"birds/internal/value"
)

const unionProgram = `
% Example 3.1 of the paper: a union view.
source r1(a:int).
source r2(a:int).
view v(a:int).

-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func TestParseUnionProgram(t *testing.T) {
	p, err := Parse(unionProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sources) != 2 || p.Sources[0].Name != "r1" || p.Sources[1].Name != "r2" {
		t.Fatalf("sources wrong: %v", p.Sources)
	}
	if p.View == nil || p.View.Name != "v" || p.View.Arity() != 1 {
		t.Fatalf("view wrong: %v", p.View)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("want 3 rules, got %d", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Head.Pred != Del("r1") {
		t.Errorf("rule 0 head = %v", r.Head.Pred)
	}
	if len(r.Body) != 2 || r.Body[0].Neg || !r.Body[1].Neg {
		t.Errorf("rule 0 body wrong: %v", r.Body)
	}
	if p.Rules[2].Head.Pred != Ins("r1") {
		t.Errorf("rule 2 head = %v", p.Rules[2].Head.Pred)
	}
	if p.LOC() != 3 {
		t.Errorf("LOC = %d", p.LOC())
	}
}

func TestParsePaperTypography(t *testing.T) {
	src := `
source r(a:int, b:int, c:int).
view v(a:int, b:int).
-r(X,Y,Z) :- r(X,Y,Z), ¬ v(X,Y).
⊥ :- v(X,Y), Y > 2.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("want 2 rules, got %d", len(p.Rules))
	}
	if !p.Rules[0].Body[1].Neg {
		t.Error("¬ not parsed as negation")
	}
	if !p.Rules[1].IsConstraint() {
		t.Error("⊥ head not parsed as constraint")
	}
	bi := p.Rules[1].Body[1].Builtin
	if bi == nil || bi.Op != OpGt || bi.R.Const.AsInt() != 2 {
		t.Errorf("comparison literal wrong: %v", p.Rules[1].Body[1])
	}
}

func TestParseConstantsAndComparisons(t *testing.T) {
	src := `
source female(e:string, b:date).
view residents(e:string, b:date, g:string).
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B).
-female(E,B) :- female(E,B), not residents(E,B,'F').
_|_ :- residents(E,B,G), B < '1962-01-01'.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eq := p.Rules[0].Body[1].Builtin
	if eq == nil || eq.Op != OpEq || eq.R.Const.AsString() != "F" {
		t.Errorf("equality literal wrong: %+v", p.Rules[0].Body[1])
	}
	atom := p.Rules[1].Body[1].Atom
	if atom == nil || !atom.Args[2].IsConst() || atom.Args[2].Const.AsString() != "F" {
		t.Errorf("string constant in atom wrong: %v", atom)
	}
	cons := p.Rules[2]
	if !cons.IsConstraint() || cons.Body[1].Builtin.Op != OpLt {
		t.Errorf("constraint wrong: %v", cons)
	}
	if cons.Body[1].Builtin.R.Const.AsString() != "1962-01-01" {
		t.Errorf("date constant wrong: %v", cons.Body[1])
	}
}

func TestParseAnonymousAndNegatedEquality(t *testing.T) {
	src := `
source r(a:int, b:int).
view v(a:int).
-r(X,Y) :- r(X,Y), not v(X), not Y = 1.
+r(X,Y) :- v(X), not r(X, _), Y = 0.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lit := p.Rules[0].Body[2]
	if !lit.Neg || lit.Builtin == nil || lit.Builtin.Op != OpEq {
		t.Errorf("negated equality wrong: %v", lit)
	}
	anon := p.Rules[1].Body[1].Atom
	if !anon.Args[1].IsAnon() {
		t.Errorf("anonymous variable not parsed: %v", anon)
	}
	if !anon.HasAnon() {
		t.Error("HasAnon false")
	}
}

func TestParseNumbers(t *testing.T) {
	src := `
source r(a:int, b:float).
view v(a:int).
+r(X,Y) :- v(X), Y = 1.5, X > -3.
-r(X,Y) :- r(X,Y), not v(X), Y = -2.5.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Rules[0].Body[1].Builtin.R.Const; f.Kind() != value.KindFloat || f.AsFloat() != 1.5 {
		t.Errorf("float literal wrong: %v", f)
	}
	if n := p.Rules[0].Body[2].Builtin.R.Const; n.AsInt() != -3 {
		t.Errorf("negative int literal wrong: %v", n)
	}
	if f := p.Rules[1].Body[2].Builtin.R.Const; f.AsFloat() != -2.5 {
		t.Errorf("negative float literal wrong: %v", f)
	}
}

func TestParseFact(t *testing.T) {
	r, err := ParseRule("r(1, 'a').")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 0 || r.Head.Pred != Pred("r") {
		t.Errorf("fact wrong: %v", r)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"r(X :- s(X).",                      // unbalanced paren
		"r(X) :- s(X)",                      // missing dot
		"r() :- s(X).",                      // nullary predicate
		"r(X) :- .",                         // empty body conjunct
		"_|_.",                              // constraint without body
		"r(X) :- s(X), X ~ 2.",              // bad operator
		"source r(a:int)",                   // missing dot on declaration
		"source r(a:frobnicate).",           // unknown type
		"r(X) :- 'unterminated.",            // unterminated string
		"view v(a:int). view v(a:int).",     // duplicate view
		"source r(a:int). source r(a:int).", // duplicate source
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	var se *SyntaxError
	_, err := Parse("r(X) :- s(X)")
	if se, _ = err.(*SyntaxError); se == nil || se.Line == 0 {
		t.Errorf("expected positioned SyntaxError, got %v", err)
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error message should mention position: %v", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "% leading comment\nr(X) :- s(X). % trailing\n% final\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("comments not skipped: %v", p.Rules)
	}
}

// Round-trip property: printing a parsed program and reparsing yields a
// structurally identical program.
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		unionProgram,
		`
source male(e:string, b:date).
source female(e:string, b:date).
source others(e:string, b:date, g:string).
view residents(e:string, b:date, g:string).
+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'M').
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B), not others(E,B,G).
-female(E,B) :- female(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`,
		`
source r(a:int, b:int).
view v(a:int, b:int).
_|_ :- v(X,Y), Y > 2.
+r(X,Y) :- v(X,Y), not r(X,Y).
-r(X,Y) :- r(X,Y), Y > 2, not v(X,Y), X <= 10, Y >= -1, X <> Y.
`,
	}
	for i, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("program %d reparse: %v\nprinted:\n%s", i, err, printed)
		}
		if p1.String() != p2.String() {
			t.Errorf("program %d: round trip differs:\n%s\nvs\n%s", i, p1, p2)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p, err := Parse(unionProgram)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c.Rules[0].Head.Pred = Ins("zzz")
	c.Sources[0].Name = "changed"
	if p.Rules[0].Head.Pred == Ins("zzz") || p.Sources[0].Name == "changed" {
		t.Error("Clone shares storage with original")
	}
}

func TestProgramAccessors(t *testing.T) {
	src := `
source r(a:int).
view v(a:int).
aux(X) :- r(X).
+r(X) :- v(X), not aux(X).
_|_ :- v(X), X > 9.
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Constraints()) != 1 || len(p.NonConstraintRules()) != 2 {
		t.Error("constraint partition wrong")
	}
	if len(p.DeltaRules()) != 1 {
		t.Error("DeltaRules wrong")
	}
	if len(p.RulesFor(Pred("aux"))) != 1 || len(p.RulesFor(Ins("r"))) != 1 {
		t.Error("RulesFor wrong")
	}
	idb := p.IDBPreds()
	if !idb[Pred("aux")] || !idb[Ins("r")] || idb[Pred("r")] {
		t.Errorf("IDBPreds wrong: %v", idb)
	}
	if p.Source("r") == nil || p.Source("nope") != nil {
		t.Error("Source lookup wrong")
	}
}

func TestTermHelpers(t *testing.T) {
	if !V("X").IsVar() || !CInt(3).IsConst() || !Anon().IsAnon() {
		t.Error("constructors wrong")
	}
	if !V("X").Equal(V("X")) || V("X").Equal(V("Y")) {
		t.Error("var equality wrong")
	}
	if !CInt(1).Equal(C(value.Int(1))) || CInt(1).Equal(CInt(2)) {
		t.Error("const equality wrong")
	}
	if !Anon().Equal(Anon()) || Anon().Equal(V("X")) {
		t.Error("anon equality wrong")
	}
	if CStr("a").String() != "'a'" || V("X").String() != "X" || Anon().String() != "_" {
		t.Error("term String wrong")
	}
}

func TestCmpOpSemantics(t *testing.T) {
	one, two := value.Int(1), value.Int(2)
	cases := []struct {
		op   CmpOp
		a, b value.Value
		want bool
	}{
		{OpEq, one, one, true}, {OpEq, one, two, false},
		{OpNe, one, two, true}, {OpNe, one, one, false},
		{OpLt, one, two, true}, {OpLt, two, one, false},
		{OpGt, two, one, true}, {OpGt, one, two, false},
		{OpLe, one, one, true}, {OpLe, two, one, false},
		{OpGe, one, one, true}, {OpGe, one, two, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	// Negate is an involution and complements Eval.
	for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe} {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive on %v", op)
		}
		if op.Negate().Eval(one, two) == op.Eval(one, two) {
			t.Errorf("Negate(%v) does not complement", op)
		}
	}
}

func TestRuleVarsAndString(t *testing.T) {
	r, err := ParseRule("+r(X,Y) :- v(X,Y), not s(Y,Z), Z > 2.")
	if err != nil {
		t.Fatal(err)
	}
	vars := r.Vars()
	want := []string{"X", "Y", "Z"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
	if r.String() != "+r(X, Y) :- v(X, Y), not s(Y, Z), Z > 2." {
		t.Errorf("rule String = %q", r.String())
	}
	c := NewConstraint(Pos(NewAtom(Pred("v"), V("X"))))
	if c.String() != "_|_ :- v(X)." {
		t.Errorf("constraint String = %q", c.String())
	}
}

func TestPredSymHelpers(t *testing.T) {
	if Ins("r").String() != "+r" || Del("r").String() != "-r" || Pred("r").String() != "r" {
		t.Error("PredSym String wrong")
	}
	if !Ins("r").IsDelta() || Pred("r").IsDelta() {
		t.Error("IsDelta wrong")
	}
	if Ins("r").Base() != Pred("r") {
		t.Error("Base wrong")
	}
}
