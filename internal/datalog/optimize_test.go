package datalog

import (
	"strings"
	"testing"
)

func mustRule(t *testing.T, src string) *Rule {
	t.Helper()
	r, err := ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSimplifyRuleDuplicates(t *testing.T) {
	r := mustRule(t, "h(X) :- r(X), r(X), not s(X), not s(X).")
	sr := SimplifyRule(r)
	if sr == nil || len(sr.Body) != 2 {
		t.Fatalf("duplicates not removed: %v", sr)
	}
}

func TestSimplifyRuleConstantPropagation(t *testing.T) {
	r := mustRule(t, "h(X,Y) :- r(X), Y = 2, not s(X,Y).")
	sr := SimplifyRule(r)
	if sr == nil {
		t.Fatal("rule dropped")
	}
	text := sr.String()
	if !strings.Contains(text, "h(X, 2)") || !strings.Contains(text, "not s(X, 2)") {
		t.Errorf("constant not propagated: %s", text)
	}
	if strings.Contains(text, "Y") {
		t.Errorf("equality should be folded away: %s", text)
	}
}

func TestSimplifyRuleKeepsSoleBinder(t *testing.T) {
	// Y occurs only in the equality: it must stay (it is the binder).
	r := mustRule(t, "h(X) :- r(X), Y = 2.")
	sr := SimplifyRule(r)
	if sr == nil || len(sr.Body) != 2 {
		t.Fatalf("sole-binder equality must be kept: %v", sr)
	}
}

func TestSimplifyRuleGroundFolding(t *testing.T) {
	if sr := SimplifyRule(mustRule(t, "h(X) :- r(X), 1 = 1, not 2 = 3.")); sr == nil || len(sr.Body) != 1 {
		t.Errorf("true ground builtins should fold away: %v", sr)
	}
	if sr := SimplifyRule(mustRule(t, "h(X) :- r(X), 1 = 2.")); sr != nil {
		t.Errorf("false ground builtin should drop the rule: %v", sr)
	}
	if sr := SimplifyRule(mustRule(t, "h(X) :- r(X), X < X.")); sr != nil {
		t.Errorf("X < X should drop the rule: %v", sr)
	}
	if sr := SimplifyRule(mustRule(t, "h(X) :- r(X), X = X, X >= X.")); sr == nil || len(sr.Body) != 1 {
		t.Errorf("X = X should fold away: %v", sr)
	}
}

func TestSimplifyRuleConflictingEqualities(t *testing.T) {
	// X = 1 and X = 2 cannot both hold.
	if sr := SimplifyRule(mustRule(t, "h(X) :- r(X), X = 1, X = 2.")); sr != nil {
		t.Errorf("conflicting equalities should drop the rule: %v", sr)
	}
}

func TestSimplifyRuleContradiction(t *testing.T) {
	if sr := SimplifyRule(mustRule(t, "h(X) :- r(X), not r(X).")); sr != nil {
		t.Errorf("p ∧ ¬p should drop the rule: %v", sr)
	}
}

func TestSimplifyProgramDedup(t *testing.T) {
	p := mustParseProg(t, `
source r(a:int).
view v(a:int).
h(X) :- r(X), not v(X).
h(X) :- not v(X), r(X).
h(X) :- r(X), 1 = 2.
`)
	sp := Simplify(p)
	if len(sp.Rules) != 1 {
		t.Fatalf("want 1 rule after simplification, got %d:\n%s", len(sp.Rules), sp)
	}
}

func TestSimplifyPreservesConstraints(t *testing.T) {
	p := mustParseProg(t, `
source r(a:int).
view v(a:int).
_|_ :- v(X), X > 9, X > 9.
+r(X) :- v(X), not r(X).
`)
	sp := Simplify(p)
	if len(sp.Constraints()) != 1 {
		t.Fatalf("constraint lost:\n%s", sp)
	}
	if len(sp.Constraints()[0].Body) != 2 {
		t.Errorf("duplicate conjunct in constraint not removed: %v", sp.Constraints()[0])
	}
}

func mustParseProg(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
