package datalog

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse checks parser robustness: arbitrary input must produce either a
// program or an error — never a panic — and successful parses must
// round-trip through the printer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		".",
		"r(X).",
		"source r(a:int).\nview v(a:int).\n+r(X) :- v(X), not r(X).",
		"-r1(X) :- r1(X), ¬v(X).",
		"⊥ :- v(X,Y), Y > 2.",
		"_|_ :- v(X), X <> 'it''s'.",
		"h(X,1.5) :- r(X,_), X >= -3.",
		"% comment only",
		"source r(a:int, b:date).",
		"r(X :- s(X).",
		"r(X) :- s(X), X ~ 2.",
		"not not not",
		"++r(X) :- v(X).",
		"'unterminated",
		"r(🙂) :- v(🙂).",
		strings.Repeat("(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// A successful parse must print and reparse to the same program.
		printed := p.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		if p2.String() != printed {
			t.Fatalf("print/parse not idempotent:\nfirst:  %q\nsecond: %q", printed, p2.String())
		}
	})
}

// FuzzLexer checks the tokenizer never panics and always terminates on
// arbitrary (including invalid UTF-8) input.
func FuzzLexer(f *testing.F) {
	f.Add("r(X) :- s(X).")
	f.Add("\xff\xfe")
	f.Add("'a''b'")
	f.Add("1.2.3.4")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream must end with EOF: %v", toks)
		}
		// Valid UTF-8 sources: every token's text must be a substring
		// concept check — just assert positions are sane.
		for _, tok := range toks {
			if tok.line < 1 || tok.col < 1 {
				t.Fatalf("bad position %d:%d for %q", tok.line, tok.col, tok.text)
			}
		}
		_ = utf8.ValidString(src)
	})
}
