package datalog

import (
	"sort"
	"strings"

	"birds/internal/value"
)

// This file implements semantics-preserving program simplifications applied
// before evaluation or SQL generation: duplicate-literal elimination,
// ground built-in folding, detection of trivially false rule bodies,
// duplicate-rule elimination, and constant propagation through positive
// equalities (X = c rewrites X to c everywhere safe).

// SimplifyRule returns a simplified copy of the rule, or nil when the body
// is unsatisfiable (the rule can never fire).
func SimplifyRule(r *Rule) *Rule {
	out := r.Clone()

	// Constant propagation: a positive equality X = c (or c = X) lets
	// every occurrence of X be replaced by c; the equality itself is then
	// dropped. Safety note: dropping is only sound because the remaining
	// occurrences of c keep the rule's bindings intact — if X occurred
	// nowhere else the equality was the sole binder, so we keep it when X
	// appears only once in the whole rule.
	constOf := make(map[string]value.Value)
	occurrences := make(map[string]int)
	countTerm := func(t Term) {
		if t.IsVar() {
			occurrences[t.Var]++
		}
	}
	if out.Head != nil {
		for _, t := range out.Head.Args {
			countTerm(t)
		}
	}
	for _, l := range out.Body {
		if l.Atom != nil {
			for _, t := range l.Atom.Args {
				countTerm(t)
			}
		} else {
			countTerm(l.Builtin.L)
			countTerm(l.Builtin.R)
		}
	}
	for _, l := range out.Body {
		if l.Builtin == nil || l.Neg || l.Builtin.Op != OpEq {
			continue
		}
		b := l.Builtin
		if b.L.IsVar() && b.R.IsConst() && occurrences[b.L.Var] > 1 {
			constOf[b.L.Var] = b.R.Const
		} else if b.R.IsVar() && b.L.IsConst() && occurrences[b.R.Var] > 1 {
			constOf[b.R.Var] = b.L.Const
		}
	}
	subst := func(t Term) Term {
		if t.IsVar() {
			if c, ok := constOf[t.Var]; ok {
				return C(c)
			}
		}
		return t
	}
	applyAtom := func(a *Atom) {
		for i, t := range a.Args {
			a.Args[i] = subst(t)
		}
	}
	if out.Head != nil {
		applyAtom(out.Head)
	}

	var body []Literal
	seen := make(map[string]bool)
	for _, l := range out.Body {
		nl := l.Clone()
		if nl.Atom != nil {
			applyAtom(nl.Atom)
		} else {
			b := nl.Builtin
			b.L, b.R = subst(b.L), subst(b.R)
			// Fold ground built-ins.
			if b.L.IsConst() && b.R.IsConst() {
				holds := b.Op.Eval(b.L.Const, b.R.Const)
				if nl.Neg {
					holds = !holds
				}
				if !holds {
					return nil // body is unsatisfiable
				}
				continue // trivially true conjunct
			}
			// X op X folds too.
			if b.L.IsVar() && b.R.IsVar() && b.L.Var == b.R.Var {
				holds := b.Op == OpEq || b.Op == OpLe || b.Op == OpGe
				if nl.Neg {
					holds = !holds
				}
				if !holds {
					return nil
				}
				continue
			}
		}
		k := nl.String()
		if seen[k] {
			continue // duplicate conjunct
		}
		seen[k] = true
		body = append(body, nl)
	}

	// Direct contradiction: a literal and its negation in one body.
	lits := make(map[string]bool, len(body))
	for _, l := range body {
		lits[l.String()] = true
	}
	for _, l := range body {
		neg := l.Clone()
		neg.Neg = !neg.Neg
		if lits[neg.String()] {
			return nil
		}
	}

	out.Body = body
	return out
}

// Simplify returns a simplified copy of the program: every rule is
// simplified, unsatisfiable rules are dropped, duplicate rules are merged
// (up to a canonical ordering of independent body literals), and rules for
// predicates that became undefined are untouched (their absence simply
// yields empty relations).
func Simplify(p *Program) *Program {
	out := &Program{Sources: p.Clone().Sources, View: p.Clone().View}
	seen := make(map[string]bool)
	for _, r := range p.Rules {
		sr := SimplifyRule(r)
		if sr == nil {
			continue
		}
		k := canonicalRuleKey(sr)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rules = append(out.Rules, sr)
	}
	return out
}

// canonicalRuleKey renders a rule with its body literals sorted, so that
// rules differing only in literal order deduplicate. (Variable renaming is
// not canonicalized; α-equivalent rules with different names are kept.)
func canonicalRuleKey(r *Rule) string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	sort.Strings(parts)
	head := "_|_"
	if r.Head != nil {
		head = r.Head.String()
	}
	return head + " :- " + strings.Join(parts, ", ")
}
