package datalog

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF     tokKind = iota
	tokIdent           // lowercase-initial identifier: predicate / type / keyword
	tokVar             // uppercase-initial identifier: variable
	tokAnon            // _
	tokNumber          // 42, -7, 1.5
	tokString          // 'abc'
	tokLParen          // (
	tokRParen          // )
	tokComma           // ,
	tokDot             // .
	tokColon           // :
	tokImplies         // :-
	tokPlus            // +
	tokMinus           // -
	tokEq              // =
	tokNe              // <> or != or ≠
	tokLt              // <
	tokGt              // >
	tokLe              // <=
	tokGe              // >=
	tokBottom          // _|_ or ⊥ or the keyword false
	tokNot             // not or ¬ or !
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tokEOF: "end of input", tokIdent: "identifier", tokVar: "variable",
		tokAnon: "_", tokNumber: "number", tokString: "string",
		tokLParen: "(", tokRParen: ")", tokComma: ",", tokDot: ".",
		tokColon: ":", tokImplies: ":-", tokPlus: "+", tokMinus: "-",
		tokEq: "=", tokNe: "<>", tokLt: "<", tokGt: ">", tokLe: "<=",
		tokGe: ">=", tokBottom: "_|_", tokNot: "not",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexer splits Datalog source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// SyntaxError is a parse or lex error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("datalog: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(r rune, size int) {
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r, size := l.peekRune()
		if size == 0 {
			return
		}
		if unicode.IsSpace(r) {
			l.advance(r, size)
			continue
		}
		if r == '%' {
			for {
				r, size = l.peekRune()
				if size == 0 || r == '\n' {
					break
				}
				l.advance(r, size)
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token { return token{kind: k, text: text, line: line, col: col} }

	r, size := l.peekRune()
	if size == 0 {
		return mk(tokEOF, ""), nil
	}

	switch r {
	case '(':
		l.advance(r, size)
		return mk(tokLParen, "("), nil
	case ')':
		l.advance(r, size)
		return mk(tokRParen, ")"), nil
	case ',':
		l.advance(r, size)
		return mk(tokComma, ","), nil
	case '+':
		l.advance(r, size)
		return mk(tokPlus, "+"), nil
	case '-':
		l.advance(r, size)
		return mk(tokMinus, "-"), nil
	case '=':
		l.advance(r, size)
		return mk(tokEq, "="), nil
	case '¬': // ¬
		l.advance(r, size)
		return mk(tokNot, "¬"), nil
	case '⊥': // ⊥
		l.advance(r, size)
		return mk(tokBottom, "⊥"), nil
	case '≠': // ≠
		l.advance(r, size)
		return mk(tokNe, "≠"), nil
	case '!':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '=' {
			l.advance(r2, s2)
			return mk(tokNe, "!="), nil
		}
		return mk(tokNot, "!"), nil
	case '<':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '>' {
			l.advance(r2, s2)
			return mk(tokNe, "<>"), nil
		} else if r2 == '=' {
			l.advance(r2, s2)
			return mk(tokLe, "<="), nil
		}
		return mk(tokLt, "<"), nil
	case '>':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '=' {
			l.advance(r2, s2)
			return mk(tokGe, ">="), nil
		}
		return mk(tokGt, ">"), nil
	case ':':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '-' {
			l.advance(r2, s2)
			return mk(tokImplies, ":-"), nil
		}
		return mk(tokColon, ":"), nil
	case '.':
		l.advance(r, size)
		return mk(tokDot, "."), nil
	case '\'':
		l.advance(r, size)
		var b strings.Builder
		for {
			r2, s2 := l.peekRune()
			if s2 == 0 {
				return token{}, l.errorf("unterminated string literal")
			}
			l.advance(r2, s2)
			if r2 == '\'' {
				// '' is an escaped quote.
				if r3, s3 := l.peekRune(); r3 == '\'' {
					l.advance(r3, s3)
					b.WriteByte('\'')
					continue
				}
				return mk(tokString, b.String()), nil
			}
			b.WriteRune(r2)
		}
	}

	if unicode.IsDigit(r) {
		start := l.pos
		sawDot := false
		for {
			r2, s2 := l.peekRune()
			if unicode.IsDigit(r2) {
				l.advance(r2, s2)
				continue
			}
			// A '.' is part of the number only if followed by a digit;
			// otherwise it terminates the clause ("r(1)." ).
			if r2 == '.' && !sawDot && l.pos+s2 < len(l.src) {
				if r3, _ := utf8.DecodeRuneInString(l.src[l.pos+s2:]); unicode.IsDigit(r3) {
					sawDot = true
					l.advance(r2, s2)
					continue
				}
			}
			break
		}
		return mk(tokNumber, l.src[start:l.pos]), nil
	}

	if isIdentStart(r) {
		start := l.pos
		for {
			r2, s2 := l.peekRune()
			if !isIdentPart(r2) {
				break
			}
			l.advance(r2, s2)
		}
		text := l.src[start:l.pos]
		if text == "_" {
			// "_|_" is the bottom symbol; a lone "_" is the anonymous
			// variable.
			if strings.HasPrefix(l.src[l.pos:], "|_") {
				l.pos += 2
				l.col += 2
				return mk(tokBottom, "_|_"), nil
			}
			return mk(tokAnon, "_"), nil
		}
		if text == "not" || text == "NOT" {
			return mk(tokNot, text), nil
		}
		if text == "false" || text == "bot" {
			return mk(tokBottom, text), nil
		}
		first, _ := utf8.DecodeRuneInString(text)
		if unicode.IsUpper(first) || first == '_' {
			return mk(tokVar, text), nil
		}
		return mk(tokIdent, text), nil
	}

	return token{}, l.errorf("unexpected character %q", r)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
