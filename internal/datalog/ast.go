// Package datalog defines the abstract syntax of the view-update-strategy
// language of the paper — nonrecursive Datalog with negation, built-in
// predicates (=, <>, <, >, <=, >=), constants, delta predicates (+r / -r)
// and integrity constraints (rules with a ⊥ head) — together with a parser
// and a pretty-printer.
//
// The concrete syntax accepted is the one used throughout the paper, e.g.
//
//	source ed(emp_name:string, dept_name:string).
//	source eed(emp_name:string, dept_name:string).
//	view ced(emp_name:string, dept_name:string).
//
//	+ed(E,D)  :- ced(E,D), not ed(E,D).
//	-eed(E,D) :- ced(E,D), eed(E,D).
//	+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
//
// Both ASCII (`not`, `:-`, `_|_`, `<>`) and the paper's typography
// (`¬`, `⊥`, `≠`) are accepted. `%` starts a line comment.
package datalog

import (
	"fmt"
	"strings"

	"birds/internal/value"
)

// Delta marks a predicate symbol as a plain relation or as one of the two
// delta relations of Section 3.1 (+r: insertion set, -r: deletion set).
type Delta uint8

// Delta markers.
const (
	NoDelta Delta = iota // r
	Insert               // +r
	Delete               // -r
)

func (d Delta) String() string {
	switch d {
	case Insert:
		return "+"
	case Delete:
		return "-"
	default:
		return ""
	}
}

// PredSym is a (possibly delta-marked) predicate symbol.
type PredSym struct {
	Name  string
	Delta Delta
}

// Pred returns the plain (non-delta) symbol for name.
func Pred(name string) PredSym { return PredSym{Name: name} }

// Ins returns the insertion delta symbol +name.
func Ins(name string) PredSym { return PredSym{Name: name, Delta: Insert} }

// Del returns the deletion delta symbol -name.
func Del(name string) PredSym { return PredSym{Name: name, Delta: Delete} }

// IsDelta reports whether p is a delta predicate.
func (p PredSym) IsDelta() bool { return p.Delta != NoDelta }

// Base returns the underlying non-delta symbol.
func (p PredSym) Base() PredSym { return PredSym{Name: p.Name} }

func (p PredSym) String() string { return p.Delta.String() + p.Name }

// TermKind discriminates Term.
type TermKind uint8

// Kinds of terms.
const (
	TermVar   TermKind = iota // a variable (X, Y, Emp, ...)
	TermConst                 // a constant ('F', 42, 1.5, true)
	TermAnon                  // the anonymous variable _
)

// Term is an argument of an atom or an operand of a built-in predicate.
type Term struct {
	Kind  TermKind
	Var   string      // variable name when Kind == TermVar
	Const value.Value // constant when Kind == TermConst
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: TermVar, Var: name} }

// C returns a constant term.
func C(v value.Value) Term { return Term{Kind: TermConst, Const: v} }

// CInt returns an integer constant term.
func CInt(i int64) Term { return C(value.Int(i)) }

// CStr returns a string constant term.
func CStr(s string) Term { return C(value.Str(s)) }

// Anon returns the anonymous variable term.
func Anon() Term { return Term{Kind: TermAnon} }

// IsVar reports whether t is a named variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == TermConst }

// IsAnon reports whether t is the anonymous variable.
func (t Term) IsAnon() bool { return t.Kind == TermAnon }

func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermConst:
		return t.Const.String()
	default:
		return "_"
	}
}

// Equal reports structural equality of terms.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TermVar:
		return t.Var == u.Var
	case TermConst:
		return t.Const.Equal(u.Const)
	default:
		return true
	}
}

// Atom is a predicate applied to terms: r(X, 'F', _).
type Atom struct {
	Pred PredSym
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(p PredSym, args ...Term) *Atom { return &Atom{Pred: p, Args: args} }

// Arity returns the number of arguments.
func (a *Atom) Arity() int { return len(a.Args) }

// Vars returns the named variables of the atom in order of first occurrence.
func (a *Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// HasAnon reports whether any argument is the anonymous variable.
func (a *Atom) HasAnon() bool {
	for _, t := range a.Args {
		if t.IsAnon() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the atom.
func (a *Atom) Clone() *Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return &Atom{Pred: a.Pred, Args: args}
}

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred.String() + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a built-in comparison operator.
type CmpOp uint8

// Built-in comparison operators.
const (
	OpEq CmpOp = iota // =
	OpNe              // <>
	OpLt              // <
	OpGt              // >
	OpLe              // <=
	OpGe              // >=
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Negate returns the complementary operator (= ↔ <>, < ↔ >=, > ↔ <=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpGe:
		return OpLt
	case OpGt:
		return OpLe
	default: // OpLe
		return OpGt
	}
}

// Eval applies the comparison to two constants.
func (op CmpOp) Eval(a, b value.Value) bool {
	switch op {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	case OpLt:
		return a.Compare(b) < 0
	case OpGt:
		return a.Compare(b) > 0
	case OpLe:
		return a.Compare(b) <= 0
	default: // OpGe
		return a.Compare(b) >= 0
	}
}

// Builtin is a built-in comparison predicate t1 op t2.
type Builtin struct {
	Op   CmpOp
	L, R Term
}

func (b *Builtin) String() string {
	return b.L.String() + " " + b.Op.String() + " " + b.R.String()
}

// Vars returns the named variables of the built-in.
func (b *Builtin) Vars() []string {
	var out []string
	if b.L.IsVar() {
		out = append(out, b.L.Var)
	}
	if b.R.IsVar() && (!b.L.IsVar() || b.R.Var != b.L.Var) {
		out = append(out, b.R.Var)
	}
	return out
}

// Literal is one conjunct of a rule body: a (possibly negated) atom or a
// (possibly negated) built-in predicate. Exactly one of Atom and Builtin is
// non-nil.
type Literal struct {
	Neg     bool
	Atom    *Atom
	Builtin *Builtin
}

// Pos returns a positive atom literal.
func Pos(a *Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated atom literal.
func Negated(a *Atom) Literal { return Literal{Neg: true, Atom: a} }

// Cmp returns a built-in comparison literal.
func Cmp(op CmpOp, l, r Term) Literal { return Literal{Builtin: &Builtin{Op: op, L: l, R: r}} }

// NegCmp returns a negated built-in comparison literal.
func NegCmp(op CmpOp, l, r Term) Literal {
	return Literal{Neg: true, Builtin: &Builtin{Op: op, L: l, R: r}}
}

// IsAtom reports whether the literal is an atom literal.
func (l Literal) IsAtom() bool { return l.Atom != nil }

// IsBuiltin reports whether the literal is a built-in literal.
func (l Literal) IsBuiltin() bool { return l.Builtin != nil }

// Vars returns the named variables of the literal.
func (l Literal) Vars() []string {
	if l.Atom != nil {
		return l.Atom.Vars()
	}
	return l.Builtin.Vars()
}

// Clone returns a deep copy of the literal.
func (l Literal) Clone() Literal {
	out := Literal{Neg: l.Neg}
	if l.Atom != nil {
		out.Atom = l.Atom.Clone()
	}
	if l.Builtin != nil {
		b := *l.Builtin
		out.Builtin = &b
	}
	return out
}

func (l Literal) String() string {
	var body string
	if l.Atom != nil {
		body = l.Atom.String()
	} else {
		body = l.Builtin.String()
	}
	if l.Neg {
		return "not " + body
	}
	return body
}

// Rule is a Datalog rule H :- L1, ..., Ln. A rule with a nil Head is an
// integrity constraint (⊥ :- body), per Section 3.2.3.
type Rule struct {
	Head *Atom // nil for constraints
	Body []Literal
}

// NewRule builds a rule.
func NewRule(head *Atom, body ...Literal) *Rule { return &Rule{Head: head, Body: body} }

// NewConstraint builds an integrity constraint ⊥ :- body.
func NewConstraint(body ...Literal) *Rule { return &Rule{Body: body} }

// IsConstraint reports whether the rule is an integrity constraint.
func (r *Rule) IsConstraint() bool { return r.Head == nil }

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	out := &Rule{}
	if r.Head != nil {
		out.Head = r.Head.Clone()
	}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		out.Body[i] = l.Clone()
	}
	return out
}

// Vars returns all named variables of the rule in order of first occurrence.
func (r *Rule) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(vs []string) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	if r.Head != nil {
		add(r.Head.Vars())
	}
	for _, l := range r.Body {
		add(l.Vars())
	}
	return out
}

func (r *Rule) String() string {
	head := "_|_"
	if r.Head != nil {
		head = r.Head.String()
	}
	if len(r.Body) == 0 {
		return head + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return head + " :- " + strings.Join(parts, ", ") + "."
}

// AttrDecl is one attribute of a relation declaration, e.g. emp_name:string.
type AttrDecl struct {
	Name string
	Type string // int | float | string | bool | date (informational; date ≡ string)
}

// RelDecl declares a source or view relation schema.
type RelDecl struct {
	Name  string
	Attrs []AttrDecl
}

// Arity returns the declared arity.
func (d *RelDecl) Arity() int { return len(d.Attrs) }

func (d *RelDecl) String() string {
	parts := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		parts[i] = a.Name + ":" + a.Type
	}
	return d.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Program is a parsed putback program: source declarations, one view
// declaration, update rules (delta heads), auxiliary rules, and constraints.
type Program struct {
	Sources []*RelDecl
	View    *RelDecl
	Rules   []*Rule // in source order; constraints have nil heads
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	out := &Program{}
	for _, s := range p.Sources {
		c := *s
		c.Attrs = append([]AttrDecl(nil), s.Attrs...)
		out.Sources = append(out.Sources, &c)
	}
	if p.View != nil {
		c := *p.View
		c.Attrs = append([]AttrDecl(nil), p.View.Attrs...)
		out.View = &c
	}
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, r.Clone())
	}
	return out
}

// Source returns the declaration of the named source relation, or nil.
func (p *Program) Source(name string) *RelDecl {
	for _, s := range p.Sources {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Constraints returns the integrity-constraint rules.
func (p *Program) Constraints() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.IsConstraint() {
			out = append(out, r)
		}
	}
	return out
}

// NonConstraintRules returns the rules that define predicates.
func (p *Program) NonConstraintRules() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if !r.IsConstraint() {
			out = append(out, r)
		}
	}
	return out
}

// DeltaRules returns the rules whose heads are delta predicates on sources.
func (p *Program) DeltaRules() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if !r.IsConstraint() && r.Head.Pred.IsDelta() {
			out = append(out, r)
		}
	}
	return out
}

// RulesFor returns the rules whose head predicate is p (matching delta
// markers exactly).
func (p *Program) RulesFor(sym PredSym) []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if !r.IsConstraint() && r.Head.Pred == sym {
			out = append(out, r)
		}
	}
	return out
}

// IDBPreds returns the set of predicates defined by some rule head.
func (p *Program) IDBPreds() map[PredSym]bool {
	out := make(map[PredSym]bool)
	for _, r := range p.Rules {
		if !r.IsConstraint() {
			out[r.Head.Pred] = true
		}
	}
	return out
}

// String renders the full program in parseable concrete syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, s := range p.Sources {
		b.WriteString("source ")
		b.WriteString(s.String())
		b.WriteString(".\n")
	}
	if p.View != nil {
		b.WriteString("view ")
		b.WriteString(p.View.String())
		b.WriteString(".\n")
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// LOC returns the number of rule lines of the program (declarations
// excluded), the "Program size (LOC)" metric of Table 1.
func (p *Program) LOC() int { return len(p.Rules) }
