package analysis

import (
	"strings"
	"testing"

	"birds/internal/datalog"
)

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustRule(t *testing.T, src string) *datalog.Rule {
	t.Helper()
	r, err := datalog.ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

const unionSrc = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func TestStratifyNonrecursive(t *testing.T) {
	p := mustParse(t, `
source r(a:int).
view v(a:int).
a(X) :- r(X).
b(X) :- a(X), not c(X).
c(X) :- r(X), not v(X).
+r(X) :- b(X).
`)
	order, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[datalog.PredSym]int)
	for i, s := range order {
		pos[s] = i
	}
	if !(pos[datalog.Pred("a")] < pos[datalog.Pred("b")]) {
		t.Errorf("a must precede b: %v", order)
	}
	if !(pos[datalog.Pred("c")] < pos[datalog.Pred("b")]) {
		t.Errorf("c must precede b: %v", order)
	}
	if !(pos[datalog.Pred("b")] < pos[datalog.Ins("r")]) {
		t.Errorf("b must precede +r: %v", order)
	}
	// Determinism.
	order2, _ := Stratify(p)
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("Stratify is not deterministic")
		}
	}
}

func TestStratifyRejectsRecursion(t *testing.T) {
	p := mustParse(t, `
source r(a:int).
view v(a:int).
a(X) :- b(X).
b(X) :- a(X).
`)
	if _, err := Stratify(p); err == nil {
		t.Fatal("recursive program must be rejected")
	}
	p2 := mustParse(t, `
source r(a:int).
view v(a:int).
a(X) :- a(X).
`)
	if err := CheckNonrecursive(p2); err == nil {
		t.Fatal("self-recursive program must be rejected")
	}
}

func TestDeps(t *testing.T) {
	p := mustParse(t, unionSrc)
	deps := Deps(p)
	got := deps[datalog.Ins("r1")]
	if len(got) != 3 {
		t.Fatalf("deps of +r1 = %v", got)
	}
	if got[0] != datalog.Pred("v") || got[1] != datalog.Pred("r1") || got[2] != datalog.Pred("r2") {
		t.Errorf("dep order not first-occurrence: %v", got)
	}
}

func TestSafety(t *testing.T) {
	good := []string{
		"-r(X) :- r(X), not v(X).",
		"+r(X,Y) :- v(X), Y = 1.",        // bound via equality with constant
		"+r(X,Y) :- v(X), Y = X.",        // bound via equality chain
		"+r(X,Y) :- v(X), Y = Z, Z = 0.", // two-step chain
		"_|_ :- v(X), X > 2.",
	}
	for _, src := range good {
		if err := CheckRuleSafety(mustRule(t, src)); err != nil {
			t.Errorf("rule %q should be safe: %v", src, err)
		}
	}
	bad := []string{
		"+r(X,Y) :- v(X).",           // head var Y unbound
		"-r(X) :- r(X), not v(X,Y).", // negated var Y unbound
		"_|_ :- v(X), Y > 2.",        // comparison var unbound
		"+r(X) :- v(X), not Y = 1.",  // negated equality unbound
		"+r(X,Y) :- v(X), Y = Z.",    // chain does not reach a constant
	}
	for _, src := range bad {
		if err := CheckRuleSafety(mustRule(t, src)); err == nil {
			t.Errorf("rule %q should be unsafe", src)
		}
	}
	p := mustParse(t, unionSrc)
	if err := CheckSafety(p); err != nil {
		t.Errorf("union program should be safe: %v", err)
	}
}

func TestGuardedNegation(t *testing.T) {
	// Example 3.2 of the paper.
	good := mustRule(t, "h(X,Y,Z) :- r1(X,Y,Z), not Z = 1, not r2(X,Y,Z).")
	if err := CheckRuleGuarded(good); err != nil {
		t.Errorf("example 3.2 should be guarded: %v", err)
	}
	// Footnote 7: primary key constraint is not guarded.
	pk := mustRule(t, "_|_ :- r(A,B1), r(A,B2), not B1 = B2.")
	if err := CheckRuleGuarded(pk); err == nil {
		t.Error("primary-key constraint should not be guarded")
	}
	// Head guarded via an equality constant.
	eq := mustRule(t, "+r(X,Y) :- v(X), Y = 'unknown'.")
	if err := CheckRuleGuarded(eq); err != nil {
		t.Errorf("equality-guarded head should pass: %v", err)
	}
	// Negated atom with variables spanning two positive atoms: unguarded.
	span := mustRule(t, "h(X,Y) :- r(X), s(Y), not q(X,Y).")
	if err := CheckRuleGuarded(span); err == nil {
		t.Error("negation spanning two guards should fail")
	}
	p := mustParse(t, unionSrc)
	if err := CheckGuardedNegation(p); err != nil {
		t.Errorf("union program should be guarded: %v", err)
	}
}

func TestSimpleComparisons(t *testing.T) {
	ok := mustParse(t, `
source r(a:int).
view v(a:int).
-r(X) :- r(X), X > 2, not v(X).
`)
	if err := CheckSimpleComparisons(ok); err != nil {
		t.Errorf("var-const comparison should pass: %v", err)
	}
	bad := mustParse(t, `
source r(a:int, b:int).
view v(a:int, b:int).
-r(X,Y) :- r(X,Y), X < Y, not v(X,Y).
`)
	if err := CheckSimpleComparisons(bad); err == nil {
		t.Error("var-var comparison should fail the LVGN restriction")
	}
}

func TestLinearView(t *testing.T) {
	// Example 3.3: rule1 conforms; rule2 (projection) and rule3 (self-join)
	// do not.
	ok := mustParse(t, `
source r(a:int, b:int, c:int).
view v(a:int, b:int).
-r(X,Y,Z) :- r(X,Y,Z), not v(X,Y).
`)
	if err := CheckLinearView(ok); err != nil {
		t.Errorf("rule1 should conform: %v", err)
	}
	proj := mustParse(t, `
source r(a:int, b:int, c:int).
view v(a:int, b:int).
-r(X,Y,Z) :- r(X,Y,Z), not v(X,_).
`)
	if err := CheckLinearView(proj); err == nil {
		t.Error("projection on view (rule2) should violate linear view")
	}
	selfJoin := mustParse(t, `
source r(a:int, b:int, c:int).
view v(a:int, b:int).
+r(X,Y,Z) :- v(X,Y), v(Y,Z), not r(X,Y,Z).
`)
	if err := CheckLinearView(selfJoin); err == nil {
		t.Error("self-join on view (rule3) should violate linear view")
	}
	// View used in a non-delta, non-constraint rule: violation.
	aux := mustParse(t, `
source r(a:int).
view v(a:int).
helper(X) :- v(X).
+r(X) :- helper(X), not r(X).
`)
	if err := CheckLinearView(aux); err == nil {
		t.Error("view in auxiliary rule should violate linear view")
	}
	// View in a constraint is allowed (§3.2.3).
	cons := mustParse(t, `
source r(a:int).
view v(a:int).
_|_ :- v(X), X > 2.
+r(X) :- v(X), not r(X).
`)
	if err := CheckLinearView(cons); err != nil {
		t.Errorf("view in constraint should be allowed: %v", err)
	}
}

func TestClassify(t *testing.T) {
	p := mustParse(t, unionSrc)
	c := Classify(p)
	if !c.LVGN() || !c.NRDatalog() {
		t.Errorf("union program should be LVGN: %+v", c)
	}
	// Inner join view (footnote 6): not LVGN but still NR-Datalog.
	join := mustParse(t, `
source s1(a:int, b:int).
source s2(b:int, c:int).
view v(a:int, b:int, c:int).
+s1(X,Y) :- v(X,Y,Z), not s1(X,Y).
+s2(Y,Z) :- v(X,Y,Z), not s2(Y,Z).
-s1(X,Y) :- s1(X,Y), s2(Y,Z), not v(X,Y,Z).
`)
	c2 := Classify(join)
	if !c2.NRDatalog() {
		t.Errorf("join program should be NR-Datalog: %+v", c2)
	}
	if c2.LVGN() {
		t.Error("join deletion rule is not guarded; program must not be LVGN")
	}
	if len(c2.Violations) == 0 {
		t.Error("violations should be reported")
	}
}

func TestCheckPutbackShape(t *testing.T) {
	if err := CheckPutbackShape(mustParse(t, unionSrc)); err != nil {
		t.Errorf("union program shape should be fine: %v", err)
	}
	cases := []struct {
		name, src, wantSub string
	}{
		{"no view", "source r(a:int).\n+r(X) :- r(X).", "must declare a view"},
		{"delta on view", "source r(a:int).\nview v(a:int).\n+v(X) :- r(X).", "does not target a declared source"},
		{"delta on unknown", "source r(a:int).\nview v(a:int).\n+s(X) :- v(X).", "does not target a declared source"},
		{"arity mismatch", "source r(a:int).\nview v(a:int).\n+r(X) :- v(X), not r(X,X).", "arity"},
		{"redefine source", "source r(a:int).\nview v(a:int).\nr(X) :- v(X).", "redefines declared relation"},
		{"undefined body pred", "source r(a:int).\nview v(a:int).\n+r(X) :- v(X), mystery(X).", "undefined predicate"},
		{"view-source collision", "source v(a:int).\nview v(a:int).\n+v(X) :- v(X).", "collides"},
	}
	for _, c := range cases {
		err := CheckPutbackShape(mustParse(t, c.src))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestClassLVGNRequiresAll(t *testing.T) {
	full := Class{Nonrecursive: true, Safe: true, Guarded: true, SimpleComparisons: true, LinearView: true}
	if !full.LVGN() {
		t.Error("all-true class should be LVGN")
	}
	for i := 0; i < 5; i++ {
		c := full
		switch i {
		case 0:
			c.Nonrecursive = false
		case 1:
			c.Safe = false
		case 2:
			c.Guarded = false
		case 3:
			c.SimpleComparisons = false
		case 4:
			c.LinearView = false
		}
		if c.LVGN() {
			t.Errorf("class with flag %d false should not be LVGN", i)
		}
	}
}
