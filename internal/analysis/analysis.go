// Package analysis implements the static analyses of Section 3 of the paper:
// the predicate dependency graph and nonrecursion check, stratification into
// an evaluation order, rule safety (range restriction), the guarded-negation
// check of §3.2.1, the linear-view restriction of Definition 3.2, and the
// resulting LVGN-Datalog classification used by the validation algorithm.
package analysis

import (
	"fmt"
	"sort"

	"birds/internal/datalog"
)

// Deps returns the predicate dependency graph of the program: an edge from
// each rule-head predicate to every predicate occurring in that rule's body.
func Deps(p *datalog.Program) map[datalog.PredSym][]datalog.PredSym {
	deps := make(map[datalog.PredSym][]datalog.PredSym)
	for _, r := range p.Rules {
		if r.IsConstraint() {
			continue
		}
		h := r.Head.Pred
		seen := make(map[datalog.PredSym]bool)
		for _, d := range deps[h] {
			seen[d] = true
		}
		for _, l := range r.Body {
			if l.Atom == nil {
				continue
			}
			if !seen[l.Atom.Pred] {
				seen[l.Atom.Pred] = true
				deps[h] = append(deps[h], l.Atom.Pred)
			}
		}
	}
	return deps
}

// CheckNonrecursive verifies that the dependency graph restricted to IDB
// predicates is acyclic (the language of the paper is nonrecursive Datalog).
func CheckNonrecursive(p *datalog.Program) error {
	_, err := Stratify(p)
	return err
}

// Stratify returns the IDB predicates in a valid bottom-up evaluation order:
// every predicate appears after all IDB predicates it depends on. It fails
// if the program is recursive. The order is deterministic.
func Stratify(p *datalog.Program) ([]datalog.PredSym, error) {
	idb := p.IDBPreds()
	deps := Deps(p)

	// Deterministic node order.
	nodes := make([]datalog.PredSym, 0, len(idb))
	for s := range idb {
		nodes = append(nodes, s)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Name != nodes[j].Name {
			return nodes[i].Name < nodes[j].Name
		}
		return nodes[i].Delta < nodes[j].Delta
	})

	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[datalog.PredSym]int)
	var order []datalog.PredSym
	var visit func(s datalog.PredSym) error
	visit = func(s datalog.PredSym) error {
		switch state[s] {
		case gray:
			return fmt.Errorf("analysis: program is recursive through predicate %s", s)
		case black:
			return nil
		}
		state[s] = gray
		// Deterministic edge order: deps preserves first-occurrence order.
		for _, d := range deps[s] {
			if idb[d] {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[s] = black
		order = append(order, s)
		return nil
	}
	for _, s := range nodes {
		if err := visit(s); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// boundVars computes the set of variables of a rule body that are range
// restricted: bound by a positive atom, or transitively by a positive
// equality with a constant or an already-bound variable.
func boundVars(body []datalog.Literal) map[string]bool {
	bound := make(map[string]bool)
	for _, l := range body {
		if l.Atom != nil && !l.Neg {
			for _, v := range l.Atom.Vars() {
				bound[v] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, l := range body {
			if l.Builtin == nil || l.Neg || l.Builtin.Op != datalog.OpEq {
				continue
			}
			a, b := l.Builtin.L, l.Builtin.R
			bind := func(t, other datalog.Term) {
				if !t.IsVar() || bound[t.Var] {
					return
				}
				if other.IsConst() || (other.IsVar() && bound[other.Var]) {
					bound[t.Var] = true
					changed = true
				}
			}
			bind(a, b)
			bind(b, a)
		}
	}
	return bound
}

// CheckRuleSafety verifies the range restriction of §2.1: every variable in
// the rule head, in a negated literal, or in a comparison must be bound by a
// positive atom or a positive equality chain.
func CheckRuleSafety(r *datalog.Rule) error {
	bound := boundVars(r.Body)
	need := func(where string, vars []string) error {
		for _, v := range vars {
			if !bound[v] {
				return fmt.Errorf("analysis: unsafe rule %q: variable %s in %s is not range restricted", r, v, where)
			}
		}
		return nil
	}
	if r.Head != nil {
		if err := need("head", r.Head.Vars()); err != nil {
			return err
		}
	}
	for _, l := range r.Body {
		switch {
		case l.Neg:
			if err := need("negated literal "+l.String(), l.Vars()); err != nil {
				return err
			}
		case l.Builtin != nil && l.Builtin.Op != datalog.OpEq:
			if err := need("comparison "+l.String(), l.Vars()); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckSafety verifies safety for every rule of the program.
func CheckSafety(p *datalog.Program) error {
	for _, r := range p.Rules {
		if err := CheckRuleSafety(r); err != nil {
			return err
		}
	}
	return nil
}

// constEqVars returns the variables equated to a constant by a positive
// equality in the body; per the proof of Lemma 3.1 such equalities act as
// guards for their variable.
func constEqVars(body []datalog.Literal) map[string]bool {
	cv := make(map[string]bool)
	for _, l := range body {
		if l.Builtin == nil || l.Neg || l.Builtin.Op != datalog.OpEq {
			continue
		}
		if l.Builtin.L.IsVar() && l.Builtin.R.IsConst() {
			cv[l.Builtin.L.Var] = true
		}
		if l.Builtin.R.IsVar() && l.Builtin.L.IsConst() {
			cv[l.Builtin.R.Var] = true
		}
	}
	return cv
}

// guardedBy reports whether vars (minus the constant-equated ones) all occur
// in a single positive body atom.
func guardedBy(body []datalog.Literal, vars []string) bool {
	cv := constEqVars(body)
	var needVars []string
	for _, v := range vars {
		if !cv[v] {
			needVars = append(needVars, v)
		}
	}
	if len(needVars) == 0 {
		return true
	}
	for _, l := range body {
		if l.Atom == nil || l.Neg {
			continue
		}
		has := make(map[string]bool)
		for _, v := range l.Atom.Vars() {
			has[v] = true
		}
		ok := true
		for _, v := range needVars {
			if !has[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// CheckRuleGuarded verifies the negation-guard condition of §3.2.1 for one
// rule: the head atom and every negated literal must be guarded by a
// positive body atom (helped by X = c equalities).
func CheckRuleGuarded(r *datalog.Rule) error {
	if r.Head != nil && len(r.Body) > 0 {
		if !guardedBy(r.Body, r.Head.Vars()) {
			return fmt.Errorf("analysis: rule %q: head atom is not negation guarded", r)
		}
	}
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		if !guardedBy(r.Body, l.Vars()) {
			return fmt.Errorf("analysis: rule %q: negated literal %s is not guarded", r, l)
		}
	}
	return nil
}

// CheckGuardedNegation verifies the guard condition for every rule,
// including constraints (§3.2.3 extends guarded negation to ⊥ rules).
func CheckGuardedNegation(p *datalog.Program) error {
	for _, r := range p.Rules {
		if err := CheckRuleGuarded(r); err != nil {
			return err
		}
	}
	return nil
}

// CheckSimpleComparisons verifies the LVGN comparison restriction of §3.2.1:
// comparison predicates are of the form X < c or X > c (variable against
// constant). Equality is unrestricted.
func CheckSimpleComparisons(p *datalog.Program) error {
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Builtin == nil || l.Builtin.Op == datalog.OpEq || l.Builtin.Op == datalog.OpNe {
				continue
			}
			b := l.Builtin
			varConst := (b.L.IsVar() && b.R.IsConst()) || (b.L.IsConst() && b.R.IsVar())
			if !varConst {
				return fmt.Errorf("analysis: rule %q: comparison %s is not of the form variable-vs-constant", r, l)
			}
		}
	}
	return nil
}

// CheckLinearView verifies Definition 3.2 (extended per §3.2.3): the view
// predicate occurs only in rules defining delta relations and in integrity
// constraints; each delta rule has at most one view atom; and no anonymous
// variable occurs in a view atom.
func CheckLinearView(p *datalog.Program) error {
	if p.View == nil {
		return fmt.Errorf("analysis: program has no view declaration")
	}
	v := p.View.Name
	for _, r := range p.Rules {
		count := 0
		for _, l := range r.Body {
			if l.Atom == nil || l.Atom.Pred.Name != v {
				continue
			}
			if l.Atom.Pred.IsDelta() {
				continue // +v/-v in incrementalized programs are not view atoms
			}
			count++
			if l.Atom.HasAnon() {
				return fmt.Errorf("analysis: rule %q: anonymous variable in view atom (projection on the view)", r)
			}
		}
		if count == 0 {
			continue
		}
		if !r.IsConstraint() && !r.Head.Pred.IsDelta() {
			return fmt.Errorf("analysis: rule %q: view occurs outside delta rules and constraints", r)
		}
		if count > 1 {
			return fmt.Errorf("analysis: rule %q: self-join on the view", r)
		}
	}
	return nil
}

// Class is the result of classifying a putback program against the language
// fragments of the paper. A program is in NR-Datalog¬,=,< when it is
// nonrecursive and safe; it is in LVGN-Datalog when additionally every rule
// is negation guarded, comparisons are variable-vs-constant, and the view is
// used linearly.
type Class struct {
	Nonrecursive      bool
	Safe              bool
	Guarded           bool
	SimpleComparisons bool
	LinearView        bool
	Violations        []string // human-readable reasons for failed checks
}

// NRDatalog reports membership in NR-Datalog with negation and built-ins.
func (c Class) NRDatalog() bool { return c.Nonrecursive && c.Safe }

// LVGN reports membership in LVGN-Datalog (§3.2).
func (c Class) LVGN() bool {
	return c.Nonrecursive && c.Safe && c.Guarded && c.SimpleComparisons && c.LinearView
}

// Classify runs all fragment checks on the program.
func Classify(p *datalog.Program) Class {
	c := Class{Nonrecursive: true, Safe: true, Guarded: true, SimpleComparisons: true, LinearView: true}
	record := func(flag *bool, err error) {
		if err != nil {
			*flag = false
			c.Violations = append(c.Violations, err.Error())
		}
	}
	record(&c.Nonrecursive, CheckNonrecursive(p))
	record(&c.Safe, CheckSafety(p))
	record(&c.Guarded, CheckGuardedNegation(p))
	record(&c.SimpleComparisons, CheckSimpleComparisons(p))
	record(&c.LinearView, CheckLinearView(p))
	return c
}

// CheckPutbackShape verifies the structural obligations of a putback
// program (§3.1): a view is declared, every delta head targets a declared
// source with matching arity, every source/view atom matches its declared
// arity, and no rule redefines a declared (EDB) relation without a delta
// marker.
func CheckPutbackShape(p *datalog.Program) error {
	if p.View == nil {
		return fmt.Errorf("analysis: putback program must declare a view")
	}
	arity := make(map[string]int)
	for _, s := range p.Sources {
		arity[s.Name] = s.Arity()
	}
	if _, dup := arity[p.View.Name]; dup {
		return fmt.Errorf("analysis: view %q collides with a source relation", p.View.Name)
	}
	arity[p.View.Name] = p.View.Arity()

	idb := p.IDBPreds()
	checkAtom := func(r *datalog.Rule, a *datalog.Atom) error {
		want, declared := arity[a.Pred.Name]
		if declared && a.Arity() != want {
			return fmt.Errorf("analysis: rule %q: %s has arity %d, declared %d", r, a.Pred, a.Arity(), want)
		}
		return nil
	}
	for _, r := range p.Rules {
		if r.Head != nil {
			h := r.Head.Pred
			if h.IsDelta() {
				if _, ok := arity[h.Name]; !ok || h.Name == p.View.Name {
					return fmt.Errorf("analysis: rule %q: delta head %s does not target a declared source", r, h)
				}
			} else if _, declared := arity[h.Name]; declared {
				return fmt.Errorf("analysis: rule %q: head redefines declared relation %q", r, h.Name)
			}
			if err := checkAtom(r, r.Head); err != nil {
				return err
			}
		}
		for _, l := range r.Body {
			if l.Atom == nil {
				continue
			}
			if err := checkAtom(r, l.Atom); err != nil {
				return err
			}
			a := l.Atom.Pred
			_, declared := arity[a.Name]
			if !a.IsDelta() && !declared && !idb[a] {
				return fmt.Errorf("analysis: rule %q: undefined predicate %s", r, a)
			}
		}
	}
	return nil
}
